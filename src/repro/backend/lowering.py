"""Instruction selection: lowering IR modules to RV32IM machine code.

This is the optimizing selector introduced by the backend code-quality
overhaul (the seed's eager selector survives in
:mod:`repro.backend.seed_lowering`).  Every emitted instruction is later
*proven* by the zkVM, so the selector works to keep the dynamic stream short:

* **No eager materialization.**  Constants fold into ``addi``/``andi``/
  ``slti``-style immediate forms; the constant 0 is the ``zero`` register;
  repeated constants, global addresses and alloca addresses are reused from a
  per-block cache instead of re-emitted per use.
* **Loop-invariant hoisting.**  A constant or address first needed inside a
  loop is materialized once in the function entry (up to
  :data:`HOIST_LIMIT` values) instead of once per iteration.
* **Address folding.**  Loads and stores through allocas, globals and
  constant-index GEPs fold the address arithmetic into the ``lw``/``sw``
  offset field; a GEP whose only users are memory accesses emits no code at
  all.
* **Parallel-move phi lowering.**  Phi nodes are lowered as one parallel
  copy per CFG edge (sequentialized with cycle-breaking), written directly
  into the phi result registers — the seed's per-phi staging register and
  block-entry copy (two dynamic moves per phi per iteration) are gone.
  Conditional edges into phi-carrying blocks get a machine-level edge block.

The cost-model-driven decisions the paper studies (branchless selects,
strength reduction) are unchanged in spirit: ``TargetCostModel`` still picks
between branchy and branchless selects and gates multiply strength
reduction.  Machine-level cleanup beyond selection (copy propagation,
store-to-load forwarding, branch flips, dead-code removal) lives in
:mod:`repro.backend.peephole`, which :func:`repro.backend.compile_module`
runs before register allocation.
"""

from __future__ import annotations

from typing import Optional

from ..ir import (
    Alloca, Argument, BasicBlock, BinaryOp, Branch, Call, Cast, CondBranch,
    Constant, Function, GEP, GlobalVariable, ICmp, Instruction, Load, Module,
    Phi, Ret, Select, Store, UndefValue, Unreachable, Value, I1,
)
from ..ir.loops import LoopInfo
from .cost_model import TargetCostModel, CPU_COST_MODEL
from .isa import (
    ARGUMENT_REGISTERS, AssemblyFunction, AssemblyProgram, INVERTED_BRANCHES,
    Label, MachineInstr,
)

#: Host-call ABI: name -> ecall id (placed in a7).
HOST_CALL_IDS = {
    "__print": 1,
    "__read_input": 2,
    "__sha256": 3,
    "__keccak256": 4,
    "__ecdsa_verify": 5,
    "__eddsa_verify": 6,
    "__bigint_modmul": 7,
    "__halt": 0,
}

DATA_SEGMENT_BASE = 0x0001_0000
STACK_TOP = 0x0400_0000
IMM_MIN, IMM_MAX = -2048, 2047

#: Maximum number of loop-invariant constants/addresses hoisted into a
#: function's entry block.  Each hoisted value occupies a register across its
#: loop uses; past a handful the register-pressure cost outweighs the
#: re-materialization savings, so the selector falls back to per-block reuse.
HOIST_LIMIT = 12

#: Address regions for absolute (global) addresses are 2 KiB so the region
#: delta always fits a 12-bit signed load/store offset.
_REGION_MASK = ~0x7FF


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


def _fits_imm(value: int) -> bool:
    return IMM_MIN <= value <= IMM_MAX


class FunctionLowering:
    """Lowers a single IR function to machine code with virtual registers."""

    def __init__(self, function: Function, program: AssemblyProgram,
                 cost_model: TargetCostModel, hoist_limit: int = HOIST_LIMIT):
        self.function = function
        self.program = program
        self.cost_model = cost_model
        self.asm = AssemblyFunction(function.name)
        self.vreg_counter = 0
        self.edge_counter = 0
        self.value_regs: dict[int, str] = {}      # id(value) -> vreg
        self.alloca_offsets: dict[int, int] = {}  # id(alloca) -> frame offset
        self.frame_bytes = 0
        self.block_labels: dict[int, str] = {}
        # Reuse caches (see _invariant_reg / _block_reg).
        self._hoisted: dict = {}                  # key -> vreg, entry block
        self._block_cache: dict = {}              # key -> vreg, current block
        self._entry_insert_pos = 0
        self._hoist_enabled = hoist_limit > 0
        self._hoist_budget = hoist_limit
        self._cur_depth = 0
        self._block_depths: dict[int, int] = {}   # id(block) -> loop depth

    # -- small helpers -----------------------------------------------------
    def new_vreg(self, hint: str = "v") -> str:
        """A fresh virtual register name."""
        self.vreg_counter += 1
        return f"%{hint}{self.vreg_counter}"

    def emit(self, opcode: str, *operands, comment: str = "") -> MachineInstr:
        """Append one instruction to the function body."""
        instr = MachineInstr(opcode, list(operands), comment)
        self.asm.body.append(instr)
        return instr

    def emit_label(self, name: str) -> None:
        """Append a label, recording its loop depth for the allocator."""
        self.asm.body.append(Label(name))
        self.asm.label_depths[name] = self._cur_depth

    def label_for(self, block: BasicBlock) -> str:
        key = id(block)
        if key not in self.block_labels:
            self.block_labels[key] = f".{self.function.name}.{block.name}"
        return self.block_labels[key]

    # -- value reuse caches ------------------------------------------------
    def _invariant_reg(self, key, hint: str, build) -> str:
        """A register holding a function-invariant value (constant, address).

        ``build(reg)`` returns the instruction(s) that materialize the value
        into ``reg``.  Inside a loop the materialization is hoisted to the
        function entry (once per function, budgeted); outside loops it is
        cached per basic block.
        """
        reg = self._hoisted.get(key)
        if reg is not None:
            return reg
        if self._cur_depth > 0 and self._hoist_enabled and self._hoist_budget > 0:
            reg = self.new_vreg(hint)
            instrs = build(reg)
            for index, instr in enumerate(instrs):
                self.asm.body.insert(self._entry_insert_pos + index, instr)
            self._entry_insert_pos += len(instrs)
            self._hoisted[key] = reg
            self._hoist_budget -= 1
            return reg
        return self._block_reg(key, hint, build)

    def _block_reg(self, key, hint: str, build) -> str:
        """A register holding a value reusable within the current block only."""
        reg = self._block_cache.get(key)
        if reg is None:
            reg = self.new_vreg(hint)
            self.asm.body.extend(build(reg))
            self._block_cache[key] = reg
        return reg

    def _const_reg(self, value: int, hint: str = "c") -> str:
        """A register holding the 32-bit constant ``value`` (``zero`` for 0)."""
        if value == 0:
            return "zero"
        return self._invariant_reg(("const", value), hint, lambda reg: [
            MachineInstr("li", [reg, value])])

    def _alloca_reg(self, alloca: Alloca) -> str:
        """A register holding the frame address of ``alloca``."""
        offset = self.alloca_offsets[id(alloca)]
        return self._invariant_reg(("alloca", id(alloca)), "fp", lambda reg: [
            MachineInstr("addi", [reg, "sp", offset],
                         comment=f"&{alloca.name}")])

    def reg_for(self, value: Value) -> str:
        """The virtual register holding ``value`` (materializing constants)."""
        if isinstance(value, Constant):
            return self._const_reg(value.signed_value)
        if isinstance(value, UndefValue):
            return "zero"
        if isinstance(value, GlobalVariable):
            address = self.program.globals_layout[value.name]
            return self._const_reg(address, hint="g")
        if isinstance(value, Alloca):
            return self._alloca_reg(value)
        key = id(value)
        if key not in self.value_regs:
            self.value_regs[key] = self.new_vreg()
        return self.value_regs[key]

    def result_reg(self, inst: Instruction) -> str:
        key = id(inst)
        if key not in self.value_regs:
            self.value_regs[key] = self.new_vreg()
        return self.value_regs[key]

    # -- static address resolution -----------------------------------------
    def _address_of(self, value: Value):
        """Resolve a pointer to a static form, or ``None``.

        Returns ``("sp", offset)`` for frame addresses and ``("abs", addr)``
        for data-segment addresses, folding constant-index GEP chains.
        """
        if isinstance(value, Alloca):
            return ("sp", self.alloca_offsets[id(value)])
        if isinstance(value, GlobalVariable):
            return ("abs", self.program.globals_layout[value.name])
        if isinstance(value, GEP) and isinstance(value.index, Constant):
            base = self._address_of(value.base)
            if base is not None:
                kind, addr = base
                return (kind, addr + value.index.signed_value * value.element_size)
        return None

    def _static_mem(self, pointer: Value):
        """The ``_address_of`` resolution of ``pointer`` iff it can be used
        directly as a load/store operand (offset in range), else ``None``."""
        static = self._address_of(pointer)
        if static is None:
            return None
        kind, address = static
        if kind == "sp" and _fits_imm(address):
            return static
        if kind == "abs" and address >= 0:
            return static
        return None

    def _mem_operand(self, pointer: Value) -> tuple[int, str]:
        """``(offset, base_reg)`` for a load/store through ``pointer``.

        Frame addresses fold into an ``sp``-relative offset; absolute
        addresses share one materialized register per 2 KiB region (the
        region delta always fits the 12-bit offset).  Anything else computes
        the address into a register and uses offset 0.
        """
        static = self._static_mem(pointer)
        if static is not None:
            kind, address = static
            if kind == "sp":
                return address, "sp"
            region = address & _REGION_MASK
            return address - region, self._const_reg(region, hint="g")
        return 0, self.reg_for(pointer)

    def _gep_folds_away(self, inst: GEP) -> bool:
        """True when a GEP needs no code: every user folds it into a memory
        operand, or it is dead."""
        if not inst.users:
            return True
        if self._static_mem(inst) is None:
            return False
        for user in inst.users:
            if isinstance(user, Load) and user.pointer is inst:
                continue
            if isinstance(user, Store) and user.pointer is inst \
                    and user.value is not inst:
                continue
            return False
        return True

    # -- driver ---------------------------------------------------------------
    def lower(self) -> AssemblyFunction:
        # Assign frame slots for allocas.
        for block in self.function.blocks:
            for inst in block.instructions:
                if isinstance(inst, Alloca):
                    self.alloca_offsets[id(inst)] = self.frame_bytes
                    self.frame_bytes += max(4, inst.size_bytes)
        self.asm.frame_size = self.frame_bytes

        # Loop depths steer constant hoisting here and spill weights in the
        # register allocator (via AssemblyFunction.label_depths).
        loops = LoopInfo(self.function)
        for block in self.function.blocks:
            self._block_depths[id(block)] = loops.loop_depth(block)
        # A function whose entry is itself a loop header cannot hoist to the
        # entry block (the materialization would still run per iteration).
        if self.function.blocks and \
                self._block_depths[id(self.function.blocks[0])] > 0:
            self._hoist_enabled = False

        # Copy incoming arguments out of a0..a7.
        for index, argument in enumerate(self.function.arguments):
            if index < len(ARGUMENT_REGISTERS):
                self.emit("mv", self.reg_for(argument), ARGUMENT_REGISTERS[index],
                          comment=f"arg {argument.name}")
        self._entry_insert_pos = len(self.asm.body)

        for block in self.function.blocks:
            self._cur_depth = self._block_depths[id(block)]
            self._block_cache.clear()
            self.emit_label(self.label_for(block))
            # Phi results are written on each incoming edge (parallel moves
            # in the predecessors); nothing to do at block entry.
            for inst in block.non_phi_instructions():
                self.lower_instruction(inst, block)
        return self.asm

    # -- per-instruction lowering --------------------------------------------
    def lower_instruction(self, inst: Instruction, block: BasicBlock) -> None:
        if isinstance(inst, Alloca):
            return  # handled via frame slots
        if isinstance(inst, BinaryOp):
            self.lower_binop(inst)
        elif isinstance(inst, ICmp):
            # A compare whose only user is this block's conditional branch is
            # fused into the branch; don't materialize it twice.
            if len(inst.users) == 1 and isinstance(inst.users[0], CondBranch) \
                    and inst.users[0].parent is block \
                    and inst.predicate in (*self._BRANCH_OPCODES, *self._SWAPPED_BRANCHES):
                return
            self.lower_icmp_value(inst)
        elif isinstance(inst, Select):
            self.lower_select(inst)
        elif isinstance(inst, Load):
            offset, base = self._mem_operand(inst.pointer)
            self.emit("lw", self.result_reg(inst), offset, base)
        elif isinstance(inst, Store):
            offset, base = self._mem_operand(inst.pointer)
            self.emit("sw", self.reg_for(inst.value), offset, base)
        elif isinstance(inst, GEP):
            if not self._gep_folds_away(inst):
                self.lower_gep(inst)
        elif isinstance(inst, Cast):
            self.lower_cast(inst)
        elif isinstance(inst, Call):
            self.lower_call(inst)
        elif isinstance(inst, Branch):
            copies = self._phi_copies(block, inst.target)
            self._emit_parallel_copies(copies)
            self.emit("j", self.label_for(inst.target))
        elif isinstance(inst, CondBranch):
            self.lower_cond_branch(inst, block)
        elif isinstance(inst, Ret):
            if inst.value is not None:
                self._move_into("a0", inst.value)
            self.emit("ret")
        elif isinstance(inst, Unreachable):
            self.emit("ebreak")
        else:
            raise NotImplementedError(f"cannot lower {type(inst).__name__}")

    def _move_into(self, register: str, value: Value) -> None:
        """Put ``value`` into a specific physical register (ABI moves)."""
        if isinstance(value, Constant) and value.signed_value != 0:
            self.emit("li", register, value.signed_value)
        else:
            self.emit("mv", register, self.reg_for(value))

    _BINOP_OPCODES = {
        "add": "add", "sub": "sub", "mul": "mul", "sdiv": "div", "udiv": "divu",
        "srem": "rem", "urem": "remu", "and": "and", "or": "or", "xor": "xor",
        "shl": "sll", "lshr": "srl", "ashr": "sra",
    }
    _IMMEDIATE_FORMS = {"add": "addi", "and": "andi", "or": "ori", "xor": "xori",
                        "shl": "slli", "lshr": "srli", "ashr": "srai"}
    _COMMUTATIVE = frozenset(["add", "mul", "and", "or", "xor"])

    def lower_binop(self, inst: BinaryOp) -> None:
        dest = self.result_reg(inst)
        lhs, rhs = inst.lhs, inst.rhs
        # Canonicalize a constant onto the right for commutative operators so
        # the immediate forms below apply.
        if isinstance(lhs, Constant) and not isinstance(rhs, Constant) \
                and inst.opcode in self._COMMUTATIVE:
            lhs, rhs = rhs, lhs
        rhs_const = rhs.signed_value if isinstance(rhs, Constant) else None
        # Immediate forms when the constant fits.
        if rhs_const is not None and inst.opcode in self._IMMEDIATE_FORMS \
                and _fits_imm(rhs_const):
            self.emit(self._IMMEDIATE_FORMS[inst.opcode], dest,
                      self.reg_for(lhs), rhs_const)
            return
        if rhs_const is not None and inst.opcode == "sub" \
                and _fits_imm(-rhs_const):
            self.emit("addi", dest, self.reg_for(lhs), -rhs_const)
            return
        # Multiplication by a power of two: shift when the cost model says so.
        if rhs_const is not None and inst.opcode == "mul" \
                and self.cost_model.expand_mul_by_constant and _is_power_of_two(rhs_const):
            self.emit("slli", dest, self.reg_for(lhs), rhs_const.bit_length() - 1)
            return
        self.emit(self._BINOP_OPCODES[inst.opcode], dest,
                  self.reg_for(lhs), self.reg_for(rhs))

    def lower_icmp_value(self, inst: ICmp) -> None:
        """Materialize a comparison result as 0/1 in a register."""
        dest = self.result_reg(inst)
        predicate = inst.predicate
        rhs_const = inst.rhs.signed_value \
            if isinstance(inst.rhs, Constant) else None

        if rhs_const is not None and self._lower_icmp_immediate(
                inst, dest, predicate, rhs_const):
            return

        lhs, rhs = self.reg_for(inst.lhs), self.reg_for(inst.rhs)
        if predicate == "eq":
            tmp = self.new_vreg()
            self.emit("xor", tmp, lhs, rhs)
            self.emit("sltiu", dest, tmp, 1)
        elif predicate == "ne":
            tmp = self.new_vreg()
            self.emit("xor", tmp, lhs, rhs)
            self.emit("sltu", dest, "zero", tmp)
        elif predicate in ("slt", "ult"):
            self.emit("slt" if predicate == "slt" else "sltu", dest, lhs, rhs)
        elif predicate in ("sgt", "ugt"):
            self.emit("slt" if predicate == "sgt" else "sltu", dest, rhs, lhs)
        elif predicate in ("sle", "ule"):
            self.emit("slt" if predicate == "sle" else "sltu", dest, rhs, lhs)
            self.emit("xori", dest, dest, 1)
        elif predicate in ("sge", "uge"):
            self.emit("slt" if predicate == "sge" else "sltu", dest, lhs, rhs)
            self.emit("xori", dest, dest, 1)
        else:
            raise NotImplementedError(predicate)

    def _lower_icmp_immediate(self, inst: ICmp, dest: str, predicate: str,
                              imm: int) -> bool:
        """Compare-against-constant forms that avoid materializing the
        constant; returns False when no immediate form applies."""
        lhs = None  # resolved lazily so a bail-out emits nothing

        def L() -> str:
            nonlocal lhs
            if lhs is None:
                lhs = self.reg_for(inst.lhs)
            return lhs

        if predicate == "eq" and imm == 0:
            self.emit("sltiu", dest, L(), 1)
            return True
        if predicate == "ne" and imm == 0:
            self.emit("sltu", dest, "zero", L())
            return True
        if predicate in ("eq", "ne") and _fits_imm(imm):
            tmp = self.new_vreg()
            self.emit("xori", tmp, L(), imm)
            if predicate == "eq":
                self.emit("sltiu", dest, tmp, 1)
            else:
                self.emit("sltu", dest, "zero", tmp)
            return True
        if predicate in ("slt", "ult") and _fits_imm(imm):
            self.emit("slti" if predicate == "slt" else "sltiu", dest, L(), imm)
            return True
        if predicate in ("sge", "uge") and _fits_imm(imm):
            self.emit("slti" if predicate == "sge" else "sltiu", dest, L(), imm)
            self.emit("xori", dest, dest, 1)
            return True
        # x <= c  is  x < c+1;  x > c  is  !(x < c+1) — valid while c+1 does
        # not overflow the immediate (and, for unsigned forms, c itself is a
        # small non-negative value so c+1 cannot wrap).
        if predicate in ("sle", "sgt") and _fits_imm(imm + 1):
            self.emit("slti", dest, L(), imm + 1)
            if predicate == "sgt":
                self.emit("xori", dest, dest, 1)
            return True
        if predicate in ("ule", "ugt") and 0 <= imm < IMM_MAX:
            self.emit("sltiu", dest, L(), imm + 1)
            if predicate == "ugt":
                self.emit("xori", dest, dest, 1)
            return True
        return False

    def lower_select(self, inst: Select) -> None:
        dest = self.result_reg(inst)
        cond = self.reg_for(inst.condition)
        true_zero = isinstance(inst.true_value, Constant) \
            and inst.true_value.signed_value == 0
        false_zero = isinstance(inst.false_value, Constant) \
            and inst.false_value.signed_value == 0
        if self.cost_model.prefer_branchless_select:
            if false_zero:
                # dest = t & -cond
                mask = self.new_vreg()
                self.emit("sub", mask, "zero", cond)
                self.emit("and", dest, self.reg_for(inst.true_value), mask)
                return
            if true_zero:
                # dest = f & (cond - 1)
                mask = self.new_vreg()
                self.emit("addi", mask, cond, -1)
                self.emit("and", dest, self.reg_for(inst.false_value), mask)
                return
            # mask = -cond; dest = (t & mask) | (f & ~mask)
            true_reg = self.reg_for(inst.true_value)
            false_reg = self.reg_for(inst.false_value)
            mask = self.new_vreg()
            inv = self.new_vreg()
            tmp_t = self.new_vreg()
            tmp_f = self.new_vreg()
            self.emit("sub", mask, "zero", cond)
            self.emit("and", tmp_t, true_reg, mask)
            self.emit("xori", inv, mask, -1)
            self.emit("and", tmp_f, false_reg, inv)
            self.emit("or", dest, tmp_t, tmp_f)
        else:
            label = f".{self.function.name}.sel{self.vreg_counter}"
            self._move_into(dest, inst.true_value)
            self.emit("bnez", cond, label)
            # The false arm only executes when the condition is false, so any
            # value materialized inside it (a global address, a cached
            # constant) must not enter the block cache: a later use in this
            # block would read a register whose defining instruction was
            # branched over.
            saved_cache = dict(self._block_cache)
            self._move_into(dest, inst.false_value)
            self._block_cache = saved_cache
            self.emit_label(label)

    def lower_gep(self, inst: GEP) -> None:
        dest = self.result_reg(inst)
        static = self._address_of(inst)
        if static is not None:
            kind, address = static
            if kind == "sp" and _fits_imm(address):
                self.emit("addi", dest, "sp", address)
                return
            if kind == "abs":
                self.emit("li", dest, address)
                return
        size = inst.element_size
        base = self.reg_for(inst.base)
        if isinstance(inst.index, Constant):
            offset = inst.index.signed_value * size
            if offset == 0:
                self.emit("mv", dest, base)
            elif _fits_imm(offset):
                self.emit("addi", dest, base, offset)
            else:
                self.emit("add", dest, base, self._const_reg(offset))
            return
        scaled = self._scaled_index_reg(inst.index, size)
        self.emit("add", dest, base, scaled)

    def _scaled_index_reg(self, index: Value, size: int) -> str:
        """``index * size`` in a register, shared per block across GEPs."""
        index_reg = self.reg_for(index)
        if size == 1:
            return index_reg
        if _is_power_of_two(size):
            shift = size.bit_length() - 1
            return self._block_reg(("scaled", index_reg, shift), "s",
                                   lambda reg: [MachineInstr(
                                       "slli", [reg, index_reg, shift])])
        return self._block_reg(("scaledm", index_reg, size), "s",
                               lambda reg: [MachineInstr(
                                   "mul", [reg, index_reg,
                                           self._const_reg(size)])])

    def lower_cast(self, inst: Cast) -> None:
        dest = self.result_reg(inst)
        source = self.reg_for(inst.value)
        bits = getattr(inst.type, "bits", 32)
        if inst.opcode == "zext":
            # i1 values are materialized as 0/1 everywhere, so the zext is a
            # plain copy (the peephole's copy propagation usually erases it).
            self.emit("mv", dest, source)
        elif inst.opcode == "trunc":
            if bits >= 32:
                self.emit("mv", dest, source)
            else:
                self.emit("andi", dest, source, (1 << bits) - 1)
        else:  # sext
            source_bits = getattr(inst.value.type, "bits", 32)
            if source_bits >= 32:
                self.emit("mv", dest, source)
            else:
                shift = 32 - source_bits
                self.emit("slli", dest, source, shift)
                self.emit("srai", dest, dest, shift)

    def lower_call(self, inst: Call) -> None:
        if inst.callee in HOST_CALL_IDS:
            for index, arg in enumerate(inst.args[:7]):
                self._move_into(ARGUMENT_REGISTERS[index], arg)
            self.emit("li", "a7", HOST_CALL_IDS[inst.callee], comment=inst.callee)
            self.emit("ecall")
        else:
            for index, arg in enumerate(inst.args[:8]):
                self._move_into(ARGUMENT_REGISTERS[index], arg)
            self.emit("call", inst.callee)
        if inst.has_result and inst.users:
            self.emit("mv", self.result_reg(inst), "a0")

    _BRANCH_OPCODES = {"eq": "beq", "ne": "bne", "slt": "blt", "sge": "bge",
                       "ult": "bltu", "uge": "bgeu"}
    _SWAPPED_BRANCHES = {"sgt": "blt", "sle": "bge", "ugt": "bltu", "ule": "bgeu"}
    _INVERTED_BRANCHES = INVERTED_BRANCHES

    def _branch_parts(self, inst: CondBranch, block: BasicBlock):
        """``(opcode, operands)`` for the branch condition, label excluded."""
        condition = inst.condition
        if isinstance(condition, ICmp) and condition.parent is block \
                and len(condition.users) == 1:
            predicate = condition.predicate
            if predicate in self._BRANCH_OPCODES:
                lhs = self.reg_for(condition.lhs)
                rhs = self.reg_for(condition.rhs)
                return self._BRANCH_OPCODES[predicate], [lhs, rhs]
            if predicate in self._SWAPPED_BRANCHES:
                lhs = self.reg_for(condition.lhs)
                rhs = self.reg_for(condition.rhs)
                return self._SWAPPED_BRANCHES[predicate], [rhs, lhs]
        return "bnez", [self.reg_for(condition)]

    def lower_cond_branch(self, inst: CondBranch, block: BasicBlock) -> None:
        true_label = self.label_for(inst.true_target)
        false_label = self.label_for(inst.false_target)

        if inst.true_target is inst.false_target:
            # Degenerate two-way branch to one block: an unconditional jump.
            copies = self._phi_copies(block, inst.true_target)
            self._emit_parallel_copies(copies)
            self.emit("j", true_label)
            return

        # Materialize branch operands and phi-copy sources *before* the
        # branch so both edges see them.
        opcode, operands = self._branch_parts(inst, block)
        true_copies = self._phi_copies(block, inst.true_target)
        false_copies = self._phi_copies(block, inst.false_target)

        if true_copies and not false_copies:
            # Invert so the copy-free edge takes the branch and the copies
            # run on the fallthrough.
            self.emit(self._INVERTED_BRANCHES[opcode], *operands, false_label)
            self._emit_parallel_copies(true_copies)
            self.emit("j", true_label)
            return
        self.emit(opcode, *operands,
                  true_label if not true_copies else self._edge_label())
        if true_copies:  # both edges carry copies: branch to an edge block
            edge = self.asm.body[-1].operands[-1]
            self._emit_parallel_copies(false_copies)
            self.emit("j", false_label)
            self.emit_label(edge)
            self._emit_parallel_copies(true_copies)
            self.emit("j", true_label)
            return
        self._emit_parallel_copies(false_copies)
        self.emit("j", false_label)

    def _edge_label(self) -> str:
        self.edge_counter += 1
        return f".{self.function.name}.edge{self.edge_counter}"

    # -- phi lowering: one parallel copy per CFG edge -------------------------
    def _phi_copies(self, block: BasicBlock, target: BasicBlock) -> list:
        """The parallel copy for edge ``block -> target``.

        Returns ``(dest, ("reg", name) | ("imm", value))`` pairs writing each
        phi's result register directly; self-copies are dropped.
        """
        copies = []
        for phi in target.phis():
            incoming = phi.incoming_for_block(block)
            if incoming is None:
                continue
            dest = self.result_reg(phi)
            if isinstance(incoming, Constant) and incoming.signed_value != 0:
                copies.append((dest, ("imm", incoming.signed_value)))
            else:
                source = self.reg_for(incoming)
                if source != dest:
                    copies.append((dest, ("reg", source)))
        return copies

    def _emit_parallel_copies(self, copies: list) -> None:
        """Sequentialize a parallel copy, breaking cycles with one temp.

        A copy may not overwrite a register another pending copy still reads
        (phi-swap semantics); when only cycles remain, one destination is
        saved into a temporary and the cycle unwinds through it.
        """
        pending = list(copies)
        while pending:
            for i, (dest, source) in enumerate(pending):
                if any(s == ("reg", dest)
                       for j, (_, s) in enumerate(pending) if j != i):
                    continue
                if source[0] == "imm":
                    self.emit("li", dest, source[1])
                else:
                    self.emit("mv", dest, source[1], comment="phi")
                pending.pop(i)
                break
            else:
                dest, _ = pending[0]
                temp = self.new_vreg("cyc")
                self.emit("mv", temp, dest, comment="phi cycle")
                pending = [(d, ("reg", temp) if s == ("reg", dest) else s)
                           for d, s in pending]


def remove_redundant_jumps(asm: AssemblyFunction) -> None:
    """Delete jumps to the label that immediately follows them."""
    body = asm.body
    cleaned = []
    for index, item in enumerate(body):
        if isinstance(item, MachineInstr) and item.opcode == "j":
            next_label = next((b for b in body[index + 1:] if isinstance(b, Label)
                               or isinstance(b, MachineInstr)), None)
            if isinstance(next_label, Label) and next_label.name == item.operands[0]:
                continue
        cleaned.append(item)
    asm.body = cleaned


def lower_module(module: Module,
                 cost_model: TargetCostModel = CPU_COST_MODEL) -> AssemblyProgram:
    """Lower an IR module to an RV32IM assembly program (virtual registers)."""
    program = AssemblyProgram()
    # Lay out globals in the data segment.
    address = DATA_SEGMENT_BASE
    for gv in module.globals.values():
        program.globals_layout[gv.name] = address
        if gv.initializer is not None:
            elem = gv.element_type.size_bytes
            for i, word in enumerate(gv.initializer):
                program.globals_init[address + i * elem] = word & 0xFFFFFFFF
        address += max(4, gv.size_bytes)
        address = (address + 3) & ~3
    program.data_end = address

    for function in module.defined_functions():
        lowering = FunctionLowering(function, program, cost_model)
        asm = lowering.lower()
        remove_redundant_jumps(asm)
        program.functions[function.name] = asm
    return program
