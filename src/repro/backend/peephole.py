"""Machine-level peephole optimization over lowered RV32IM code.

Runs between instruction selection and register allocation (plus a light
post-allocation cleanup), removing the redundancy that survives even careful
lowering — every instruction deleted here is one fewer *proven* instruction
per execution on the zkVM:

* **Copy propagation** — uses of ``mv`` destinations read the original
  source while both stay unchanged, which strands the copy for dead-code
  removal (phi copies, ABI moves, GEP aliases).
* **Constant re-materialization CSE** — a second ``li`` of a value some
  register already holds becomes a copy of that register (then usually dies).
* **Store-to-load forwarding** — a load from a (base, offset) the block just
  stored to reads the stored register instead of memory; loads from the same
  address forward to the first load.  Conservative aliasing: any store
  through a *different* base register, and any call, invalidates tracking.
* **Dead store elimination** — a store overwritten by another store to the
  same (base, offset) with no possibly-aliasing read or call in between.
* **Branch-over-jump flips** — ``bCC …, L1; j L2; L1:`` becomes the inverted
  branch straight to ``L2`` with fallthrough to ``L1``.
* **Dead code removal** — instructions defining a virtual register with no
  remaining uses (and no side effects) are deleted, cascading.

All transformations preserve guest-visible behaviour (outputs, return value,
host-call sequence); they deliberately *change* the instruction stream and
therefore dynamic instruction/load/store counts — that is the point.  The
backend differential suite (``tests/test_backend_differential.py``) pins the
behavioural equivalence against the preserved seed backend for every
benchmark under both paper profiles.

Hit counters for every rule are accumulated into a plain dict (see
:func:`run_peephole` / :func:`cleanup_after_regalloc`) and surfaced by
``repro lower --stats``.
"""

from __future__ import annotations

from .isa import CALLER_SAVED, INVERTED_BRANCHES, Label, MachineInstr, REGISTER_NUMBERS
from .regalloc import instr_registers

#: Opcodes that may be deleted when their destination register is unused.
#: Loads are included: dropping a dead load changes paging/load counters but
#: never guest-visible behaviour.
_REMOVABLE_OPS = frozenset([
    "add", "addi", "sub", "and", "andi", "or", "ori", "xor", "xori",
    "sll", "slli", "srl", "srli", "sra", "srai",
    "slt", "slti", "sltu", "sltiu", "lui", "li", "mv",
    "mul", "mulh", "mulhu", "mulhsu", "div", "divu", "rem", "remu",
    "lw", "lb", "lbu", "lh", "lhu",
])

#: Conditional branch inversions used by the branch-over-jump flip (the
#: same table the lowering uses for copy-free-edge inversion).
_INVERTED = INVERTED_BRANCHES

#: Instructions that end the local-analysis window within a function body.
_BARRIER_OPS = frozenset(["call", "ecall", "jal", "jalr"])


def _is_vreg(operand) -> bool:
    return isinstance(operand, str) and operand.startswith("%")


def _new_stats() -> dict:
    return {
        "copy_propagated": 0,
        "li_cse": 0,
        "load_forwarded": 0,
        "dead_stores": 0,
        "dead_instructions": 0,
        "branch_flips": 0,
        "redundant_jumps": 0,
        "self_moves": 0,
        "redundant_li": 0,
    }


def _merge_stats(total: dict, part: dict) -> None:
    for key, value in part.items():
        total[key] = total.get(key, 0) + value


# -- pre-allocation pass -------------------------------------------------------
def run_peephole(asm, max_rounds: int = 4) -> dict:
    """Optimize ``asm`` (virtual-register form) in place; returns hit counts.

    Iterates the local rules and the global dead-code sweep until a round
    changes nothing (bounded by ``max_rounds``).
    """
    stats = _new_stats()
    for _ in range(max_rounds):
        before = sum(stats.values())
        _local_pass(asm, stats)
        _dead_code_pass(asm, stats)
        _flip_branches(asm, stats)
        _drop_redundant_jumps(asm, stats)
        if sum(stats.values()) == before:
            break
    return stats


class _BlockState:
    """Forward-scan tracking state, reset at labels and control transfers."""

    def __init__(self):
        self.copy_of: dict[str, str] = {}     # reg -> equivalent source reg
        self.const_of: dict[str, int] = {}    # reg -> known constant value
        self.const_holder: dict[int, str] = {}  # value -> register holding it
        self.mem: dict[tuple, str] = {}       # (base, offset) -> value reg
        self.pending_store: dict[tuple, int] = {}  # (base, offset) -> body idx

    def reset(self):
        self.__init__()

    def clobber_memory(self):
        self.mem.clear()
        self.pending_store.clear()

    def kill_register(self, reg: str) -> None:
        """Invalidate every fact that mentions ``reg``."""
        self.copy_of.pop(reg, None)
        for key, source in list(self.copy_of.items()):
            if source == reg:
                del self.copy_of[key]
        value = self.const_of.pop(reg, None)
        if value is not None and self.const_holder.get(value) == reg:
            del self.const_holder[value]
        for key in [k for k, v in self.mem.items()
                    if k[0] == reg or v == reg]:
            del self.mem[key]
        for key in [k for k in self.pending_store if k[0] == reg]:
            del self.pending_store[key]


def _resolve(state: _BlockState, reg: str) -> str:
    """Follow the copy chain of ``reg`` to its oldest live equivalent."""
    seen = set()
    while reg in state.copy_of and reg not in seen:
        seen.add(reg)
        reg = state.copy_of[reg]
    return reg


def _local_pass(asm, stats: dict) -> None:
    """One forward scan: copy propagation, li CSE, store/load forwarding and
    dead-store elimination, block by block."""
    state = _BlockState()
    delete: set[int] = set()

    for index, item in enumerate(asm.body):
        if isinstance(item, Label):
            state.reset()
            continue
        opcode = item.opcode
        ops = item.operands

        # Control transfers and calls: propagate into the instruction's own
        # uses first (below), but conservative state handling here.
        def_positions, use_positions = instr_registers(item)

        # 1. Rewrite uses through the copy chain (virtual sources only: a
        # physical register may be clobbered by calls the chain cannot see).
        for pos in use_positions:
            reg = ops[pos]
            if not isinstance(reg, str):
                continue
            resolved = _resolve(state, reg)
            if resolved != reg:
                ops[pos] = resolved
                stats["copy_propagated"] += 1

        if opcode in _BARRIER_OPS:
            state.clobber_memory()
            # A call clobbers caller-saved physical registers.
            for reg in list(state.copy_of):
                if state.copy_of[reg] in CALLER_SAVED or reg in CALLER_SAVED:
                    del state.copy_of[reg]
            for reg in list(state.const_of):
                if reg in CALLER_SAVED:
                    value = state.const_of.pop(reg)
                    if state.const_holder.get(value) == reg:
                        del state.const_holder[value]
            continue
        if item.is_branch:
            # Branch targets leave the block; facts die at the boundary.
            state.reset()
            continue

        # 2. Memory tracking.
        if opcode == "sw":
            value_reg, offset, base = ops[0], ops[1], ops[2]
            key = (base, offset)
            pending = state.pending_store.get(key)
            if pending is not None:
                delete.add(pending)
                stats["dead_stores"] += 1
            # A store through base B cannot alias (B, other-offset): word
            # aligned, same dynamic base.  Anything through a different base
            # register might alias — drop those facts.
            for other in [k for k in state.mem if k[0] != base]:
                del state.mem[other]
            for other in [k for k in state.pending_store if k[0] != base]:
                del state.pending_store[other]
            state.mem[key] = value_reg
            state.pending_store[key] = index
            continue
        if opcode == "lw":
            dest, offset, base = ops[0], ops[1], ops[2]
            key = (base, offset)
            known = state.mem.get(key)
            if known == dest:
                # The register already holds exactly this memory word.
                delete.add(index)
                stats["load_forwarded"] += 1
                continue
            if known is not None:
                asm.body[index] = MachineInstr("mv", [dest, known],
                                               comment=item.comment)
                item = asm.body[index]
                stats["load_forwarded"] += 1
                # Fall through to the mv bookkeeping below.
                opcode, ops = "mv", item.operands
                def_positions, use_positions = instr_registers(item)
            else:
                # A real memory read: it may observe any pending store whose
                # address we cannot prove distinct (different base register,
                # or this very address).
                for other in [k for k in state.pending_store if k[0] != base]:
                    del state.pending_store[other]
                state.pending_store.pop(key, None)
                state.kill_register(dest)
                state.mem[key] = dest
                continue

        # 3. li CSE: a constant some register already holds becomes a copy.
        if opcode == "li":
            dest, value = ops[0], ops[1]
            holder = state.const_holder.get(value)
            state.kill_register(dest)
            if holder is not None and holder != dest and _is_vreg(holder):
                asm.body[index] = MachineInstr("mv", [dest, holder],
                                               comment=item.comment)
                state.copy_of[dest] = holder
                stats["li_cse"] += 1
            else:
                state.const_of[dest] = value
                state.const_holder.setdefault(value, dest)
            continue

        # 4. Generic def bookkeeping (+ copy facts for mv).
        defined = [ops[pos] for pos in def_positions if isinstance(ops[pos], str)]
        for reg in defined:
            state.kill_register(reg)
        if opcode == "mv":
            dest, source = ops[0], ops[1]
            if dest != source and (_is_vreg(source) or source == "zero"):
                state.copy_of[dest] = source
                value = state.const_of.get(source)
                if value is not None:
                    state.const_of[dest] = value

    if delete:
        asm.body = [item for i, item in enumerate(asm.body) if i not in delete]


def _dead_code_pass(asm, stats: dict) -> None:
    """Remove side-effect-free instructions whose virtual destination is
    never used, cascading through operands."""
    while True:
        uses: dict[str, int] = {}
        for item in asm.body:
            if not isinstance(item, MachineInstr):
                continue
            _, use_positions = instr_registers(item)
            for pos in use_positions:
                reg = item.operands[pos]
                if _is_vreg(reg):
                    uses[reg] = uses.get(reg, 0) + 1
        removed = 0
        kept = []
        for item in asm.body:
            if isinstance(item, MachineInstr) and item.opcode in _REMOVABLE_OPS:
                def_positions, _ = instr_registers(item)
                if def_positions:
                    dest = item.operands[def_positions[0]]
                    if _is_vreg(dest) and not uses.get(dest):
                        removed += 1
                        continue
            kept.append(item)
        if not removed:
            break
        asm.body = kept
        stats["dead_instructions"] += removed


def _flip_branches(asm, stats: dict) -> None:
    """``bCC …, L1; j L2; L1:``  →  ``b!CC …, L2; L1:``."""
    body = asm.body
    cleaned = []
    index = 0
    while index < len(body):
        item = body[index]
        if (isinstance(item, MachineInstr) and item.opcode in _INVERTED
                and index + 2 < len(body)):
            jump, label = body[index + 1], body[index + 2]
            if (isinstance(jump, MachineInstr) and jump.opcode == "j"
                    and isinstance(label, Label)
                    and label.name == item.operands[-1]):
                flipped = MachineInstr(
                    _INVERTED[item.opcode],
                    item.operands[:-1] + [jump.operands[0]], item.comment)
                cleaned.extend([flipped, label])
                index += 3
                stats["branch_flips"] += 1
                continue
        cleaned.append(item)
        index += 1
    asm.body = cleaned


def _drop_redundant_jumps(asm, stats: dict) -> None:
    """Delete jumps to the label that immediately follows them."""
    body = asm.body
    cleaned = []
    for index, item in enumerate(body):
        if isinstance(item, MachineInstr) and item.opcode == "j":
            following = next((b for b in body[index + 1:]
                              if isinstance(b, (Label, MachineInstr))), None)
            if isinstance(following, Label) and following.name == item.operands[0]:
                stats["redundant_jumps"] += 1
                continue
        cleaned.append(item)
    asm.body = cleaned


# -- post-allocation cleanup ---------------------------------------------------
def cleanup_after_regalloc(asm) -> dict:
    """Physical-register cleanup after allocation; returns hit counts.

    Coalesced copies (``mv x, x``), constants re-loaded into a register that
    already holds them, spill-slot store-to-load forwarding, and the branch
    shapes re-exposed by allocation are cleaned here.  Everything is local to
    a label-to-control-transfer window, with the same conservative aliasing
    rules as the pre-allocation pass.
    """
    stats = _new_stats()
    const_of: dict[str, int] = {}
    mem: dict[tuple, str] = {}

    def window_reset():
        const_of.clear()
        mem.clear()

    kept = []
    for item in asm.body:
        if isinstance(item, Label):
            window_reset()
            kept.append(item)
            continue
        opcode = item.opcode
        ops = item.operands
        if opcode in _BARRIER_OPS or item.is_branch:
            window_reset()
            kept.append(item)
            continue
        if opcode == "mv" and ops[0] == ops[1]:
            stats["self_moves"] += 1
            continue
        if opcode == "li":
            dest, value = ops[0], ops[1]
            if const_of.get(dest) == value:
                stats["redundant_li"] += 1
                continue
            _kill_physical(dest, const_of, mem)
            const_of[dest] = value
            kept.append(item)
            continue
        if opcode == "sw":
            value_reg, offset, base = ops
            for other in [k for k in mem if k[0] != base]:
                del mem[other]
            mem[(base, offset)] = value_reg
            kept.append(item)
            continue
        if opcode == "lw":
            dest, offset, base = ops
            known = mem.get((base, offset))
            if known is not None:
                if known == dest:
                    stats["load_forwarded"] += 1
                    continue
                kept.append(MachineInstr("mv", [dest, known],
                                         comment=item.comment))
                stats["load_forwarded"] += 1
                _kill_physical(dest, const_of, mem)
                value = const_of.get(known)
                if value is not None:
                    const_of[dest] = value
                continue
            _kill_physical(dest, const_of, mem)
            mem[(base, offset)] = dest
            kept.append(item)
            continue
        def_positions, _ = instr_registers(item)
        for pos in def_positions:
            reg = ops[pos]
            if isinstance(reg, str):
                _kill_physical(reg, const_of, mem)
        if opcode == "mv":
            value = const_of.get(ops[1])
            if value is not None:
                const_of[ops[0]] = value
        kept.append(item)
    asm.body = kept

    _flip_branches(asm, stats)
    _drop_redundant_jumps(asm, stats)
    return stats


def _kill_physical(reg: str, const_of: dict, mem: dict) -> None:
    const_of.pop(reg, None)
    for key in [k for k, v in mem.items() if k[0] == reg or v == reg]:
        del mem[key]


#: Registers the RVC recoloring may rename away: the allocator's caller-saved
#: pool plus its spill scratch — all outside the compressed (x8–x15) class.
RVC_RENAMEABLE = ("t0", "t1", "t2", "t3", "t4", "t5", "t6")
#: Rename destinations, most-preferred first: caller-saved registers inside
#: the compressed class.  a0/a1 come last — they usually carry arguments or
#: the return value and so are rarely free anyway.
RVC_TARGETS = ("a2", "a3", "a4", "a5", "a1", "a0")


def recolor_for_rvc(asm) -> int:
    """Rename t-registers onto free a-registers for RVC compressibility.

    The RVC compressed forms (:mod:`repro.backend.rvc`) can only address
    x8–x15 (``s0``/``s1``/``a0``–``a5``) in their 3-bit register fields, but
    the allocator's caller-saved pool is ``t0``–``t4`` — entirely outside
    that class.  After allocation and frame finalization every operand is
    physical, so a *consistent whole-function* rename of one caller-saved
    register to another unused caller-saved register is semantics-preserving:

    * the target register appears nowhere in the function, so no explicit
      def/use collides;
    * implicit clobbers (a callee or host call trashing caller-saved state)
      can only differ for values live across a ``call``/``ecall``, and the
      allocator never assigns caller-saved registers to such intervals.

    Renames the most-frequently-used t-registers onto free a-registers
    (most uses first) and returns how many registers were remapped.
    ``repro lower --stats`` surfaces the count as ``rvc_recolored``.
    """
    counts: dict[str, int] = {}
    used: set[str] = set()
    for instr in asm.instructions():
        for operand in instr.operands:
            if isinstance(operand, str) and operand in REGISTER_NUMBERS:
                used.add(operand)
                counts[operand] = counts.get(operand, 0) + 1
    free = [reg for reg in RVC_TARGETS if reg not in used]
    sources = sorted((reg for reg in RVC_RENAMEABLE if reg in used),
                     key=lambda reg: (-counts[reg], reg))
    mapping = dict(zip(sources, free))
    if not mapping:
        return 0
    for instr in asm.instructions():
        instr.operands = [mapping.get(operand, operand)
                          if isinstance(operand, str) else operand
                          for operand in instr.operands]
    return len(mapping)
