"""Target cost models that steer instruction selection.

The default model mirrors LLVM's RISC-V tuning for conventional cores
(division is slow, branches can mispredict, so branchless selects are
preferred).  The zkVM-aware model is the paper's Change Set 1: it reflects
the near-uniform per-instruction cost of proving, so the backend prefers the
shortest instruction sequence even when it contains a division or a branch.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TargetCostModel:
    """Knobs consulted by the instruction selector."""

    name: str = "cpu"
    #: Lower ``select`` into a branch-free mask sequence (5 ALU ops) instead of
    #: a short branch.  Good when branches mispredict; bad when every
    #: instruction is proven.
    prefer_branchless_select: bool = True
    #: Expand multiplications by small constants into shift/add sequences.
    expand_mul_by_constant: bool = True
    #: Relative instruction costs (used for reporting and by the autotuner's
    #: static estimator, not by the emulator).
    cost_alu: int = 1
    cost_mul: int = 3
    cost_div: int = 20
    cost_load: int = 3
    cost_store: int = 1
    cost_branch: int = 2
    #: Weight of byte-accurate code size (RVC-compressed ``code_bytes``) in
    #: composite objectives.  0.0 keeps historical cycles-only behavior; the
    #: autotuner's ``--size-weight`` folds bytes into candidate fitness as
    #: ``cycles + weight * code_bytes``.
    code_size_weight: float = 0.0


CPU_COST_MODEL = TargetCostModel(name="cpu")

ZKVM_COST_MODEL = TargetCostModel(
    name="zkvm",
    prefer_branchless_select=False,
    expand_mul_by_constant=False,
    cost_alu=1, cost_mul=1, cost_div=2, cost_load=1, cost_store=1, cost_branch=1,
)


def cost_model_for(zkvm_aware: bool) -> TargetCostModel:
    """The backend cost model for a compilation mode: zkVM-aware or CPU."""
    return ZKVM_COST_MODEL if zkvm_aware else CPU_COST_MODEL
