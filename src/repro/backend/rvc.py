"""RV32C: rewriting eligible 32-bit instructions into 16-bit compressed forms.

The compressor works on the *canonical* instruction atoms produced by
:mod:`repro.backend.encoding`'s pseudo-expansion (real RV32I mnemonics with
physical register names), so eligibility is a pure predicate over one
instruction plus — for control transfers — its branch offset:

* :func:`compress` returns the 16-bit halfword for an eligible atom and
  ``None`` otherwise; the encoder's address-assignment fixpoint calls it with
  the current offset until sizes stabilize.
* :func:`decode_compressed` is the exact inverse: it returns the canonical
  atom a halfword came from, so ``encode → decode → re-encode`` is
  byte-identical and a compressed program decodes to the *same* canonical
  instruction stream as its uncompressed twin.

Implemented forms (RV32C; ``c.jal`` exists in RV32 only):

========================  ====================================================
quadrant 0                ``c.lw``, ``c.sw`` (x8–x15 registers, word offsets)
quadrant 1                ``c.nop``, ``c.addi``, ``c.jal``, ``c.li``,
                          ``c.addi16sp``, ``c.lui``, ``c.srli``, ``c.srai``,
                          ``c.andi``, ``c.sub``, ``c.xor``, ``c.or``,
                          ``c.and``, ``c.j``, ``c.beqz``, ``c.bnez``
quadrant 2                ``c.slli``, ``c.lwsp``, ``c.swsp``, ``c.jr``,
                          ``c.jalr``, ``c.mv``, ``c.add``, ``c.ebreak``
========================  ====================================================

Deliberately not emitted: ``c.addi4spn`` (the backend materializes stack
addresses through ``sp``-relative loads/stores, so the form almost never
fires) and the floating-point forms (no F extension in this ISA).
"""

from __future__ import annotations

from typing import Optional

from .isa import REGISTER_NAMES, REGISTER_NUMBERS

#: Registers addressable by the compressed 3-bit register fields (x8–x15).
COMPRESSED_REGISTERS = tuple(REGISTER_NAMES[8:16])  # s0 s1 a0 a1 a2 a3 a4 a5

_PRIME = {name: number - 8 for number, name in enumerate(REGISTER_NAMES)
          if 8 <= number <= 15}


def is_compressed_reg(name: str) -> bool:
    """True when ``name`` is addressable by a 3-bit RVC register field."""
    return name in _PRIME


def _num(name: str) -> Optional[int]:
    return REGISTER_NUMBERS.get(name)


# -- immediate scramblers ------------------------------------------------------
def _cj_imm(offset: int) -> int:
    """The 11 permuted offset bits of the CJ format (c.j / c.jal)."""
    return (((offset >> 11) & 1) << 10 | ((offset >> 4) & 1) << 9
            | ((offset >> 8) & 3) << 7 | ((offset >> 10) & 1) << 6
            | ((offset >> 6) & 1) << 5 | ((offset >> 7) & 1) << 4
            | ((offset >> 1) & 7) << 1 | ((offset >> 5) & 1))


def _cj_offset(word: int) -> int:
    """Inverse of :func:`_cj_imm` over a full halfword."""
    offset = (((word >> 12) & 1) << 11 | ((word >> 11) & 1) << 4
              | ((word >> 9) & 3) << 8 | ((word >> 8) & 1) << 10
              | ((word >> 7) & 1) << 6 | ((word >> 6) & 1) << 7
              | ((word >> 3) & 7) << 1 | ((word >> 2) & 1) << 5)
    return offset - 4096 if offset & 0x800 else offset


def _cb_imm_hi(offset: int) -> int:
    """Bits [12:10] of the CB branch format: offset[8|4:3]."""
    return ((offset >> 8) & 1) << 2 | ((offset >> 3) & 3)


def _cb_imm_lo(offset: int) -> int:
    """Bits [6:2] of the CB branch format: offset[7:6|2:1|5]."""
    return (((offset >> 6) & 3) << 3 | ((offset >> 1) & 3) << 1
            | ((offset >> 5) & 1))


def _cb_offset(word: int) -> int:
    offset = (((word >> 12) & 1) << 8 | ((word >> 10) & 3) << 3
              | ((word >> 5) & 3) << 6 | ((word >> 3) & 3) << 1
              | ((word >> 2) & 1) << 5)
    return offset - 512 if offset & 0x100 else offset


def _imm6(value: int) -> bool:
    return -32 <= value <= 31


# -- compression ---------------------------------------------------------------
def compress(opcode: str, operands: tuple,
             offset: Optional[int] = None) -> Optional[int]:
    """The 16-bit encoding of a canonical atom, or ``None`` if ineligible.

    ``operands`` uses the canonical shapes of
    :mod:`repro.backend.encoding` (register *names*, integer immediates,
    loads/stores as ``(reg, offset, base)``).  ``offset`` is the
    pc-relative byte distance for branches and jumps.
    """
    if opcode == "addi":
        rd, rs1, imm = operands
        if rd == "zero" and rs1 == "zero" and imm == 0:
            return 0x0001                                        # c.nop
        if rs1 == "zero" and rd != "zero" and _imm6(imm):
            return (0b010 << 13 | ((imm >> 5) & 1) << 12         # c.li
                    | _num(rd) << 7 | (imm & 0x1F) << 2 | 0b01)
        if imm == 0 and rd != "zero" and rs1 != "zero":
            return (0b100 << 13 | _num(rd) << 7                  # c.mv
                    | _num(rs1) << 2 | 0b10)
        if rd == rs1 and rd != "zero" and imm != 0 and _imm6(imm):
            return (0b000 << 13 | ((imm >> 5) & 1) << 12         # c.addi
                    | _num(rd) << 7 | (imm & 0x1F) << 2 | 0b01)
        if rd == "sp" and rs1 == "sp" and imm != 0 and imm % 16 == 0 \
                and -512 <= imm <= 496:
            # Reached only for |imm| > 31 (c.addi matched above), so the
            # c.addi / c.addi16sp ranges stay disjoint and decode→re-encode
            # reproduces the original halfword.
            return (0b011 << 13 | ((imm >> 9) & 1) << 12         # c.addi16sp
                    | 2 << 7 | ((imm >> 4) & 1) << 6
                    | ((imm >> 6) & 1) << 5 | ((imm >> 7) & 3) << 3
                    | ((imm >> 5) & 1) << 2 | 0b01)
        return None
    if opcode == "add":
        rd, rs1, rs2 = operands
        if rd == rs1 and rd != "zero" and rs2 != "zero":
            return (0b100 << 13 | 1 << 12 | _num(rd) << 7        # c.add
                    | _num(rs2) << 2 | 0b10)
        return None
    if opcode in ("sub", "xor", "or", "and"):
        rd, rs1, rs2 = operands
        if rd == rs1 and rd in _PRIME and rs2 in _PRIME:
            funct2 = ("sub", "xor", "or", "and").index(opcode)
            return (0b100011 << 10 | _PRIME[rd] << 7             # c.sub/...
                    | funct2 << 5 | _PRIME[rs2] << 2 | 0b01)
        return None
    if opcode == "slli":
        rd, rs1, shamt = operands
        if rd == rs1 and rd != "zero" and 1 <= shamt <= 31:
            return 0b000 << 13 | _num(rd) << 7 | shamt << 2 | 0b10
        return None
    if opcode in ("srli", "srai"):
        rd, rs1, shamt = operands
        if rd == rs1 and rd in _PRIME and 1 <= shamt <= 31:
            funct2 = 0 if opcode == "srli" else 1
            return (0b100 << 13 | funct2 << 10 | _PRIME[rd] << 7
                    | shamt << 2 | 0b01)
        return None
    if opcode == "andi":
        rd, rs1, imm = operands
        if rd == rs1 and rd in _PRIME and _imm6(imm):
            return (0b100 << 13 | ((imm >> 5) & 1) << 12 | 0b10 << 10
                    | _PRIME[rd] << 7 | (imm & 0x1F) << 2 | 0b01)
        return None
    if opcode == "lui":
        rd, imm = operands
        value = imm - (1 << 20) if imm & 0x80000 else imm        # signed 20-bit
        if rd not in ("zero", "sp") and value != 0 and _imm6(value):
            return (0b011 << 13 | ((value >> 5) & 1) << 12
                    | _num(rd) << 7 | (value & 0x1F) << 2 | 0b01)
        return None
    if opcode == "lw":
        rd, off, base = operands
        if base == "sp" and rd != "zero" and 0 <= off <= 252 and off % 4 == 0:
            return (0b010 << 13 | ((off >> 5) & 1) << 12         # c.lwsp
                    | _num(rd) << 7 | ((off >> 2) & 7) << 4
                    | ((off >> 6) & 3) << 2 | 0b10)
        if rd in _PRIME and base in _PRIME and 0 <= off <= 124 and off % 4 == 0:
            return (0b010 << 13 | ((off >> 3) & 7) << 10         # c.lw
                    | _PRIME[base] << 7 | ((off >> 2) & 1) << 6
                    | ((off >> 6) & 1) << 5 | _PRIME[rd] << 2)
        return None
    if opcode == "sw":
        rs2, off, base = operands
        if base == "sp" and 0 <= off <= 252 and off % 4 == 0:
            return (0b110 << 13 | ((off >> 2) & 0xF) << 9        # c.swsp
                    | ((off >> 6) & 3) << 7 | _num(rs2) << 2 | 0b10)
        if rs2 in _PRIME and base in _PRIME and 0 <= off <= 124 and off % 4 == 0:
            return (0b110 << 13 | ((off >> 3) & 7) << 10         # c.sw
                    | _PRIME[base] << 7 | ((off >> 2) & 1) << 6
                    | ((off >> 6) & 1) << 5 | _PRIME[rs2] << 2)
        return None
    if opcode == "jal":
        (rd,) = operands
        if offset is None or not -2048 <= offset <= 2046:
            return None
        if rd == "zero":
            return 0b101 << 13 | _cj_imm(offset) << 2 | 0b01     # c.j
        if rd == "ra":
            return 0b001 << 13 | _cj_imm(offset) << 2 | 0b01     # c.jal (RV32)
        return None
    if opcode == "jalr":
        rd, base, imm = operands
        if imm != 0 or base == "zero":
            return None
        if rd == "zero":
            return 0b100 << 13 | _num(base) << 7 | 0b10          # c.jr
        if rd == "ra":
            return 0b100 << 13 | 1 << 12 | _num(base) << 7 | 0b10  # c.jalr
        return None
    if opcode in ("beq", "bne"):
        rs1, rs2 = operands
        if rs2 != "zero" or rs1 not in _PRIME:
            return None
        if offset is None or not -256 <= offset <= 254:
            return None
        funct3 = 0b110 if opcode == "beq" else 0b111             # c.beqz/c.bnez
        return (funct3 << 13 | _cb_imm_hi(offset) << 10
                | _PRIME[rs1] << 7 | _cb_imm_lo(offset) << 2 | 0b01)
    if opcode == "ebreak":
        return 0x9002                                            # c.ebreak
    return None


# -- decompression -------------------------------------------------------------
class CompressedDecodeError(Exception):
    """A halfword that is not one of the compressed forms we emit."""


def decode_compressed(word: int):
    """Invert :func:`compress`: ``(opcode, operands, offset_or_None)``.

    Raises :class:`CompressedDecodeError` for halfwords outside the emitted
    subset (including the all-zero illegal instruction).
    """
    word &= 0xFFFF
    quadrant = word & 0b11
    funct3 = (word >> 13) & 0b111
    if quadrant == 0b00:
        rd_p = COMPRESSED_REGISTERS[(word >> 2) & 7]
        base = COMPRESSED_REGISTERS[(word >> 7) & 7]
        off = (((word >> 10) & 7) << 3 | ((word >> 6) & 1) << 2
               | ((word >> 5) & 1) << 6)
        if funct3 == 0b010:
            return "lw", (rd_p, off, base), None
        if funct3 == 0b110:
            return "sw", (rd_p, off, base), None
        raise CompressedDecodeError(f"unsupported quadrant-0 halfword "
                                    f"{word:#06x}")
    if quadrant == 0b01:
        if funct3 == 0b000:
            rd = REGISTER_NAMES[(word >> 7) & 0x1F]
            imm = ((word >> 12) & 1) << 5 | ((word >> 2) & 0x1F)
            imm = imm - 64 if imm & 0x20 else imm
            if rd == "zero":                                     # c.nop
                return "addi", ("zero", "zero", 0), None
            return "addi", (rd, rd, imm), None                   # c.addi
        if funct3 == 0b001:
            return "jal", ("ra",), _cj_offset(word)              # c.jal
        if funct3 == 0b010:
            rd = REGISTER_NAMES[(word >> 7) & 0x1F]
            imm = ((word >> 12) & 1) << 5 | ((word >> 2) & 0x1F)
            imm = imm - 64 if imm & 0x20 else imm
            return "addi", (rd, "zero", imm), None               # c.li
        if funct3 == 0b011:
            rd = REGISTER_NAMES[(word >> 7) & 0x1F]
            if rd == "sp":                                       # c.addi16sp
                imm = (((word >> 12) & 1) << 9 | ((word >> 6) & 1) << 4
                       | ((word >> 5) & 1) << 6 | ((word >> 3) & 3) << 7
                       | ((word >> 2) & 1) << 5)
                imm = imm - 1024 if imm & 0x200 else imm
                return "addi", ("sp", "sp", imm), None
            imm = ((word >> 12) & 1) << 5 | ((word >> 2) & 0x1F)
            imm = imm - 64 if imm & 0x20 else imm
            return "lui", (rd, imm & 0xFFFFF), None              # c.lui
        if funct3 == 0b100:
            rd = COMPRESSED_REGISTERS[(word >> 7) & 7]
            funct2 = (word >> 10) & 0b11
            if funct2 == 0b00 or funct2 == 0b01:
                shamt = ((word >> 12) & 1) << 5 | ((word >> 2) & 0x1F)
                op = "srli" if funct2 == 0b00 else "srai"
                return op, (rd, rd, shamt), None
            if funct2 == 0b10:
                imm = ((word >> 12) & 1) << 5 | ((word >> 2) & 0x1F)
                imm = imm - 64 if imm & 0x20 else imm
                return "andi", (rd, rd, imm), None               # c.andi
            rs2 = COMPRESSED_REGISTERS[(word >> 2) & 7]
            op = ("sub", "xor", "or", "and")[(word >> 5) & 0b11]
            return op, (rd, rd, rs2), None
        if funct3 == 0b101:
            return "jal", ("zero",), _cj_offset(word)            # c.j
        if funct3 in (0b110, 0b111):
            rs1 = COMPRESSED_REGISTERS[(word >> 7) & 7]
            op = "beq" if funct3 == 0b110 else "bne"
            return op, (rs1, "zero"), _cb_offset(word)
    if quadrant == 0b10:
        rd = REGISTER_NAMES[(word >> 7) & 0x1F]
        if funct3 == 0b000:
            shamt = ((word >> 12) & 1) << 5 | ((word >> 2) & 0x1F)
            return "slli", (rd, rd, shamt), None                 # c.slli
        if funct3 == 0b010:
            off = (((word >> 12) & 1) << 5 | ((word >> 4) & 7) << 2
                   | ((word >> 2) & 3) << 6)
            return "lw", (rd, off, "sp"), None                   # c.lwsp
        if funct3 == 0b100:
            rs2 = REGISTER_NAMES[(word >> 2) & 0x1F]
            if (word >> 12) & 1:
                if rd == "zero" and rs2 == "zero":
                    return "ebreak", (), None                    # c.ebreak
                if rs2 == "zero":
                    return "jalr", ("ra", rd, 0), None           # c.jalr
                return "add", (rd, rd, rs2), None                # c.add
            if rs2 == "zero":
                return "jalr", ("zero", rd, 0), None             # c.jr
            return "addi", (rd, rs2, 0), None                    # c.mv
        if funct3 == 0b110:
            off = ((word >> 9) & 0xF) << 2 | ((word >> 7) & 3) << 6
            rs2 = REGISTER_NAMES[(word >> 2) & 0x1F]
            return "sw", (rs2, off, "sp"), None                  # c.swsp
    raise CompressedDecodeError(f"unsupported compressed halfword {word:#06x}")
