"""The seed backend, preserved verbatim: naive lowering + single-range
linear scan.

This module freezes the backend exactly as it stood before the code-quality
overhaul (PR 4), the same way :mod:`repro.emulator.reference` preserves the
seed interpreter and :mod:`repro.passes.seed_analysis` preserves the seed
pass manager.  It is the *differential oracle and benchmark baseline* for the
optimizing backend:

* ``tests/test_backend_differential.py`` proves the optimizing backend
  (:func:`repro.backend.compile_module`) produces identical guest outputs for
  every benchmark under both paper profiles;
* ``benchmarks/bench_backend.py`` / ``make bench-backend`` enforce the >=10%
  geomean RISC Zero total-cycle reduction against this baseline;
* the ``--seed-backend`` escape hatch (CLI, runner, engine) routes every
  compile through :func:`seed_compile_module` for A/B measurements.

Nothing here should change behaviour; only mechanical edits (imports, the
``seed_`` entry-point names, this docstring) differ from the seed sources.
The seed's lowering deliberately materialized every constant and address
eagerly, used one staging register per phi, allocated one [start, end] range
per virtual register, and did no machine-level cleanup -- exactly the
redundancy the optimizing backend removes.
"""


from __future__ import annotations

from typing import Optional

from ..ir import (
    Alloca, Argument, BasicBlock, BinaryOp, Branch, Call, Cast, CondBranch,
    Constant, Function, GEP, GlobalVariable, ICmp, Instruction, Load, Module,
    Phi, Ret, Select, Store, UndefValue, Unreachable, Value, I1,
)
from .cost_model import TargetCostModel, CPU_COST_MODEL
from .isa import (
    ARGUMENT_REGISTERS, AssemblyFunction, AssemblyProgram, Label, MachineInstr,
)

#: Host-call ABI: name -> ecall id (placed in a7).
HOST_CALL_IDS = {
    "__print": 1,
    "__read_input": 2,
    "__sha256": 3,
    "__keccak256": 4,
    "__ecdsa_verify": 5,
    "__eddsa_verify": 6,
    "__bigint_modmul": 7,
    "__halt": 0,
}

DATA_SEGMENT_BASE = 0x0001_0000
STACK_TOP = 0x0400_0000
IMM_MIN, IMM_MAX = -2048, 2047


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


class SeedFunctionLowering:
    """Lowers a single IR function to machine code with virtual registers."""

    def __init__(self, function: Function, program: AssemblyProgram,
                 cost_model: TargetCostModel):
        self.function = function
        self.program = program
        self.cost_model = cost_model
        self.asm = AssemblyFunction(function.name)
        self.vreg_counter = 0
        self.value_regs: dict[int, str] = {}      # id(value) -> vreg
        self.alloca_offsets: dict[int, int] = {}  # id(alloca) -> frame offset
        self.frame_bytes = 0
        self.block_labels: dict[int, str] = {}
        self.phi_temps: dict[int, str] = {}       # id(phi) -> staging vreg

    # -- small helpers -----------------------------------------------------
    def new_vreg(self, hint: str = "v") -> str:
        self.vreg_counter += 1
        return f"%{hint}{self.vreg_counter}"

    def emit(self, opcode: str, *operands, comment: str = "") -> MachineInstr:
        instr = MachineInstr(opcode, list(operands), comment)
        self.asm.body.append(instr)
        return instr

    def emit_label(self, name: str) -> None:
        self.asm.body.append(Label(name))

    def label_for(self, block: BasicBlock) -> str:
        key = id(block)
        if key not in self.block_labels:
            self.block_labels[key] = f".{self.function.name}.{block.name}"
        return self.block_labels[key]

    def reg_for(self, value: Value) -> str:
        """The virtual register holding ``value`` (materializing constants)."""
        if isinstance(value, Constant):
            reg = self.new_vreg("c")
            self.emit("li", reg, value.signed_value)
            return reg
        if isinstance(value, UndefValue):
            reg = self.new_vreg("u")
            self.emit("li", reg, 0)
            return reg
        if isinstance(value, GlobalVariable):
            reg = self.new_vreg("g")
            self.emit("li", reg, self.program.globals_layout[value.name],
                      comment=f"&{value.name}")
            return reg
        if isinstance(value, Alloca):
            offset = self.alloca_offsets[id(value)]
            reg = self.new_vreg("fp")
            self.emit("addi", reg, "sp", offset, comment=f"&{value.name}")
            return reg
        key = id(value)
        if key not in self.value_regs:
            self.value_regs[key] = self.new_vreg()
        return self.value_regs[key]

    def result_reg(self, inst: Instruction) -> str:
        key = id(inst)
        if key not in self.value_regs:
            self.value_regs[key] = self.new_vreg()
        return self.value_regs[key]

    # -- driver ---------------------------------------------------------------
    def lower(self) -> AssemblyFunction:
        # Assign frame slots for allocas.
        for block in self.function.blocks:
            for inst in block.instructions:
                if isinstance(inst, Alloca):
                    self.alloca_offsets[id(inst)] = self.frame_bytes
                    self.frame_bytes += max(4, inst.size_bytes)
        self.asm.frame_size = self.frame_bytes

        # Copy incoming arguments out of a0..a7.
        for index, argument in enumerate(self.function.arguments):
            if index < len(ARGUMENT_REGISTERS):
                self.emit("mv", self.reg_for(argument), ARGUMENT_REGISTERS[index],
                          comment=f"arg {argument.name}")

        # Pre-create staging registers for every phi.
        for block in self.function.blocks:
            for phi in block.phis():
                self.phi_temps[id(phi)] = self.new_vreg("phi")

        for block in self.function.blocks:
            self.emit_label(self.label_for(block))
            # Phi results are read from their staging registers on block entry.
            for phi in block.phis():
                self.emit("mv", self.result_reg(phi), self.phi_temps[id(phi)],
                          comment=f"phi {phi.name}")
            for inst in block.non_phi_instructions():
                self.lower_instruction(inst, block)
        return self.asm

    # -- per-instruction lowering --------------------------------------------
    def lower_instruction(self, inst: Instruction, block: BasicBlock) -> None:
        if isinstance(inst, Alloca):
            return  # handled via frame slots
        if isinstance(inst, BinaryOp):
            self.lower_binop(inst)
        elif isinstance(inst, ICmp):
            # A compare whose only user is this block's conditional branch is
            # fused into the branch; don't materialize it twice.
            if len(inst.users) == 1 and isinstance(inst.users[0], CondBranch) \
                    and inst.users[0].parent is block \
                    and inst.predicate in (*self._BRANCH_OPCODES, *self._SWAPPED_BRANCHES):
                return
            self.lower_icmp_value(inst)
        elif isinstance(inst, Select):
            self.lower_select(inst)
        elif isinstance(inst, Load):
            self.emit("lw", self.result_reg(inst), 0, self.reg_for(inst.pointer))
        elif isinstance(inst, Store):
            self.emit("sw", self.reg_for(inst.value), 0, self.reg_for(inst.pointer))
        elif isinstance(inst, GEP):
            self.lower_gep(inst)
        elif isinstance(inst, Cast):
            self.lower_cast(inst)
        elif isinstance(inst, Call):
            self.lower_call(inst)
        elif isinstance(inst, Branch):
            self.lower_phi_moves(block, inst.target)
            self.emit("j", self.label_for(inst.target))
        elif isinstance(inst, CondBranch):
            self.lower_cond_branch(inst, block)
        elif isinstance(inst, Ret):
            if inst.value is not None:
                self.emit("mv", "a0", self.reg_for(inst.value))
            self.emit("ret")
        elif isinstance(inst, Unreachable):
            self.emit("ebreak")
        else:
            raise NotImplementedError(f"cannot lower {type(inst).__name__}")

    _BINOP_OPCODES = {
        "add": "add", "sub": "sub", "mul": "mul", "sdiv": "div", "udiv": "divu",
        "srem": "rem", "urem": "remu", "and": "and", "or": "or", "xor": "xor",
        "shl": "sll", "lshr": "srl", "ashr": "sra",
    }
    _IMMEDIATE_FORMS = {"add": "addi", "and": "andi", "or": "ori", "xor": "xori",
                        "shl": "slli", "lshr": "srli", "ashr": "srai"}

    def lower_binop(self, inst: BinaryOp) -> None:
        dest = self.result_reg(inst)
        rhs_const = inst.rhs.signed_value if isinstance(inst.rhs, Constant) else None
        # Immediate forms when the constant fits.
        if rhs_const is not None and inst.opcode in self._IMMEDIATE_FORMS \
                and IMM_MIN <= rhs_const <= IMM_MAX:
            self.emit(self._IMMEDIATE_FORMS[inst.opcode], dest,
                      self.reg_for(inst.lhs), rhs_const)
            return
        if rhs_const is not None and inst.opcode == "sub" \
                and IMM_MIN <= -rhs_const <= IMM_MAX:
            self.emit("addi", dest, self.reg_for(inst.lhs), -rhs_const)
            return
        # Multiplication by a power of two: shift when the cost model says so.
        if rhs_const is not None and inst.opcode == "mul" \
                and self.cost_model.expand_mul_by_constant and _is_power_of_two(rhs_const):
            self.emit("slli", dest, self.reg_for(inst.lhs), rhs_const.bit_length() - 1)
            return
        self.emit(self._BINOP_OPCODES[inst.opcode], dest,
                  self.reg_for(inst.lhs), self.reg_for(inst.rhs))

    def lower_icmp_value(self, inst: ICmp) -> None:
        """Materialize a comparison result as 0/1 in a register."""
        dest = self.result_reg(inst)
        lhs, rhs = self.reg_for(inst.lhs), self.reg_for(inst.rhs)
        predicate = inst.predicate
        if predicate == "eq":
            tmp = self.new_vreg()
            self.emit("xor", tmp, lhs, rhs)
            self.emit("sltiu", dest, tmp, 1)
        elif predicate == "ne":
            tmp = self.new_vreg()
            self.emit("xor", tmp, lhs, rhs)
            self.emit("sltu", dest, "zero", tmp)
        elif predicate in ("slt", "ult"):
            self.emit("slt" if predicate == "slt" else "sltu", dest, lhs, rhs)
        elif predicate in ("sgt", "ugt"):
            self.emit("slt" if predicate == "sgt" else "sltu", dest, rhs, lhs)
        elif predicate in ("sle", "ule"):
            self.emit("slt" if predicate == "sle" else "sltu", dest, rhs, lhs)
            self.emit("xori", dest, dest, 1)
        elif predicate in ("sge", "uge"):
            self.emit("slt" if predicate == "sge" else "sltu", dest, lhs, rhs)
            self.emit("xori", dest, dest, 1)
        else:
            raise NotImplementedError(predicate)

    def lower_select(self, inst: Select) -> None:
        dest = self.result_reg(inst)
        cond = self.reg_for(inst.condition)
        true_reg = self.reg_for(inst.true_value)
        false_reg = self.reg_for(inst.false_value)
        if self.cost_model.prefer_branchless_select:
            # mask = -cond; dest = (t & mask) | (f & ~mask)
            mask = self.new_vreg()
            inv = self.new_vreg()
            tmp_t = self.new_vreg()
            tmp_f = self.new_vreg()
            self.emit("sub", mask, "zero", cond)
            self.emit("and", tmp_t, true_reg, mask)
            self.emit("xori", inv, mask, -1)
            self.emit("and", tmp_f, false_reg, inv)
            self.emit("or", dest, tmp_t, tmp_f)
        else:
            label = f".{self.function.name}.sel{self.vreg_counter}"
            self.emit("mv", dest, true_reg)
            self.emit("bnez", cond, label)
            self.emit("mv", dest, false_reg)
            self.emit_label(label)

    def lower_gep(self, inst: GEP) -> None:
        dest = self.result_reg(inst)
        base = self.reg_for(inst.base)
        size = inst.element_size
        if isinstance(inst.index, Constant):
            offset = inst.index.signed_value * size
            if IMM_MIN <= offset <= IMM_MAX:
                self.emit("addi", dest, base, offset)
            else:
                tmp = self.new_vreg()
                self.emit("li", tmp, offset)
                self.emit("add", dest, base, tmp)
            return
        index = self.reg_for(inst.index)
        if _is_power_of_two(size):
            scaled = self.new_vreg()
            self.emit("slli", scaled, index, size.bit_length() - 1)
            self.emit("add", dest, base, scaled)
        else:
            tmp = self.new_vreg()
            scaled = self.new_vreg()
            self.emit("li", tmp, size)
            self.emit("mul", scaled, index, tmp)
            self.emit("add", dest, base, scaled)

    def lower_cast(self, inst: Cast) -> None:
        dest = self.result_reg(inst)
        source = self.reg_for(inst.value)
        bits = getattr(inst.type, "bits", 32)
        if inst.opcode == "zext":
            if inst.value.type is I1:
                self.emit("andi", dest, source, 1)
            else:
                self.emit("mv", dest, source)
        elif inst.opcode == "trunc":
            if bits >= 32:
                self.emit("mv", dest, source)
            else:
                self.emit("andi", dest, source, (1 << bits) - 1)
        else:  # sext
            source_bits = getattr(inst.value.type, "bits", 32)
            if source_bits >= 32:
                self.emit("mv", dest, source)
            else:
                shift = 32 - source_bits
                self.emit("slli", dest, source, shift)
                self.emit("srai", dest, dest, shift)

    def lower_call(self, inst: Call) -> None:
        if inst.callee in HOST_CALL_IDS:
            for index, arg in enumerate(inst.args[:7]):
                self.emit("mv", ARGUMENT_REGISTERS[index], self.reg_for(arg))
            self.emit("li", "a7", HOST_CALL_IDS[inst.callee], comment=inst.callee)
            self.emit("ecall")
        else:
            for index, arg in enumerate(inst.args[:8]):
                self.emit("mv", ARGUMENT_REGISTERS[index], self.reg_for(arg))
            self.emit("call", inst.callee)
        if inst.has_result and inst.users:
            self.emit("mv", self.result_reg(inst), "a0")

    _BRANCH_OPCODES = {"eq": "beq", "ne": "bne", "slt": "blt", "sge": "bge",
                       "ult": "bltu", "uge": "bgeu"}
    _SWAPPED_BRANCHES = {"sgt": "blt", "sle": "bge", "ugt": "bltu", "ule": "bgeu"}

    def lower_cond_branch(self, inst: CondBranch, block: BasicBlock) -> None:
        self.lower_phi_moves(block, inst.true_target)
        self.lower_phi_moves(block, inst.false_target)
        true_label = self.label_for(inst.true_target)
        false_label = self.label_for(inst.false_target)
        condition = inst.condition

        # Fuse a single-use compare into the branch itself.
        if isinstance(condition, ICmp) and condition.parent is block \
                and len(condition.users) == 1:
            lhs, rhs = self.reg_for(condition.lhs), self.reg_for(condition.rhs)
            predicate = condition.predicate
            if predicate in self._BRANCH_OPCODES:
                self.emit(self._BRANCH_OPCODES[predicate], lhs, rhs, true_label)
            elif predicate in self._SWAPPED_BRANCHES:
                self.emit(self._SWAPPED_BRANCHES[predicate], rhs, lhs, true_label)
            else:  # pragma: no cover - all predicates are covered above
                self.emit("bnez", self.reg_for(condition), true_label)
            self.emit("j", false_label)
            return
        self.emit("bnez", self.reg_for(condition), true_label)
        self.emit("j", false_label)

    def lower_phi_moves(self, block: BasicBlock, target: BasicBlock) -> None:
        """Copy the incoming values for the target block's phis into their
        staging registers (two-stage copies give parallel-move semantics)."""
        for phi in target.phis():
            incoming = phi.incoming_for_block(block)
            if incoming is None:
                continue
            self.emit("mv", self.phi_temps[id(phi)], self.reg_for(incoming),
                      comment=f"phi {phi.name} from {block.name}")


def seed_remove_redundant_jumps(asm: AssemblyFunction) -> None:
    """Delete jumps to the label that immediately follows them."""
    body = asm.body
    cleaned = []
    for index, item in enumerate(body):
        if isinstance(item, MachineInstr) and item.opcode == "j":
            next_label = next((b for b in body[index + 1:] if isinstance(b, Label)
                               or isinstance(b, MachineInstr)), None)
            if isinstance(next_label, Label) and next_label.name == item.operands[0]:
                continue
        cleaned.append(item)
    asm.body = cleaned


def seed_lower_module(module: Module,
                 cost_model: TargetCostModel = CPU_COST_MODEL) -> AssemblyProgram:
    """Lower an IR module to an RV32IM assembly program (virtual registers)."""
    program = AssemblyProgram()
    # Lay out globals in the data segment.
    address = DATA_SEGMENT_BASE
    for gv in module.globals.values():
        program.globals_layout[gv.name] = address
        if gv.initializer is not None:
            elem = gv.element_type.size_bytes
            for i, word in enumerate(gv.initializer):
                program.globals_init[address + i * elem] = word & 0xFFFFFFFF
        address += max(4, gv.size_bytes)
        address = (address + 3) & ~3
    program.data_end = address

    for function in module.defined_functions():
        lowering = SeedFunctionLowering(function, program, cost_model)
        asm = lowering.lower()
        seed_remove_redundant_jumps(asm)
        program.functions[function.name] = asm
    return program


# ----------------------------------------------------------------------
# seed register allocator
# ----------------------------------------------------------------------

from dataclasses import dataclass

from .isa import CALLEE_SAVED, CALLER_SAVED, REGISTER_NAMES


#: Registers handed out by the allocator.  t5/t6 are reserved as spill scratch.
ALLOCATABLE_CALLER = ["t0", "t1", "t2", "t3", "t4"]
ALLOCATABLE_CALLEE = ["s1", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11"]
SPILL_SCRATCH = ["t5", "t6"]


def _is_vreg(operand) -> bool:
    return isinstance(operand, str) and operand.startswith("%")


def seed_instr_registers(instr: MachineInstr) -> tuple[list, list]:
    """(defs, uses) positions of register operands for an instruction.

    Returns two lists of operand *indices* so rewriting is straightforward.
    """
    opcode = instr.opcode
    ops = instr.operands
    reg_positions = [i for i, op in enumerate(ops) if isinstance(op, str) and
                     (op.startswith("%") or op in REGISTER_NAMES)]
    if opcode in ("sw", "sb", "sh"):
        return [], reg_positions                       # store: value, base are uses
    if opcode in ("beq", "bne", "blt", "bge", "bltu", "bgeu"):
        return [], reg_positions
    if opcode in ("beqz", "bnez"):
        return [], reg_positions
    if opcode in ("j", "call", "ret", "ecall", "ebreak", "nop"):
        return [], reg_positions
    if opcode in ("jal", "jalr"):
        return reg_positions[:1], reg_positions[1:]
    # Default: first register operand is the destination, the rest are sources.
    return reg_positions[:1], reg_positions[1:]


@dataclass
class SeedLiveInterval:
    vreg: str
    start: int
    end: int
    crosses_call: bool = False
    assigned: str | None = None
    spill_slot: int | None = None


def _block_boundaries(body: list) -> list[tuple[int, int]]:
    """(start, end) instruction-index ranges of the machine basic blocks."""
    boundaries = []
    start = 0
    for index, item in enumerate(body):
        if isinstance(item, Label) and index > start:
            boundaries.append((start, index))
            start = index
        elif isinstance(item, MachineInstr) and item.is_terminator_like:
            boundaries.append((start, index + 1))
            start = index + 1
    if start < len(body):
        boundaries.append((start, len(body)))
    return [b for b in boundaries if b[0] < b[1]]


def seed_compute_live_intervals(body: list) -> dict[str, SeedLiveInterval]:
    """Conservative single-range live intervals with CFG-aware extension.

    Uses iterative liveness over the machine basic blocks, then collapses each
    vreg's live positions into one [start, end] range (standard linear scan).
    """
    # Map labels to the block that starts there.
    blocks = _block_boundaries(body)
    label_to_block = {}
    for block_index, (start, end) in enumerate(blocks):
        for position in range(start, end):
            item = body[position]
            if isinstance(item, Label):
                label_to_block[item.name] = block_index
            else:
                break

    def successors(block_index: int) -> list[int]:
        start, end = blocks[block_index]
        result = []
        fallthrough = True
        for position in range(end - 1, start - 1, -1):
            item = body[position]
            if not isinstance(item, MachineInstr):
                continue
            if item.opcode in ("j",):
                target = label_to_block.get(item.operands[0])
                if target is not None:
                    result.append(target)
                fallthrough = False
            elif item.is_branch and item.opcode != "j":
                target = label_to_block.get(item.operands[-1])
                if target is not None:
                    result.append(target)
            elif item.opcode in ("ret",):
                fallthrough = False
            break
        if fallthrough and block_index + 1 < len(blocks):
            result.append(block_index + 1)
        return result

    # Per-block def/use sets for virtual registers.
    defs: list[set] = [set() for _ in blocks]
    uses: list[set] = [set() for _ in blocks]
    for block_index, (start, end) in enumerate(blocks):
        for position in range(start, end):
            item = body[position]
            if not isinstance(item, MachineInstr):
                continue
            def_positions, use_positions = seed_instr_registers(item)
            for pos in use_positions:
                reg = item.operands[pos]
                if _is_vreg(reg) and reg not in defs[block_index]:
                    uses[block_index].add(reg)
            for pos in def_positions:
                reg = item.operands[pos]
                if _is_vreg(reg):
                    defs[block_index].add(reg)

    live_in: list[set] = [set() for _ in blocks]
    live_out: list[set] = [set() for _ in blocks]
    changed = True
    while changed:
        changed = False
        for block_index in range(len(blocks) - 1, -1, -1):
            out = set()
            for succ in successors(block_index):
                out |= live_in[succ]
            new_in = uses[block_index] | (out - defs[block_index])
            if out != live_out[block_index] or new_in != live_in[block_index]:
                live_out[block_index] = out
                live_in[block_index] = new_in
                changed = True

    intervals: dict[str, SeedLiveInterval] = {}

    def touch(vreg: str, position: int) -> None:
        interval = intervals.get(vreg)
        if interval is None:
            intervals[vreg] = SeedLiveInterval(vreg, position, position)
        else:
            interval.start = min(interval.start, position)
            interval.end = max(interval.end, position)

    for block_index, (start, end) in enumerate(blocks):
        for vreg in live_in[block_index]:
            touch(vreg, start)
        for vreg in live_out[block_index]:
            touch(vreg, end - 1)
        for position in range(start, end):
            item = body[position]
            if not isinstance(item, MachineInstr):
                continue
            def_positions, use_positions = seed_instr_registers(item)
            for pos in def_positions + use_positions:
                reg = item.operands[pos]
                if _is_vreg(reg):
                    touch(reg, position)

    # Mark intervals that are live across a call (they need callee-saved regs).
    call_positions = [i for i, item in enumerate(body)
                      if isinstance(item, MachineInstr) and item.opcode in ("call", "ecall")]
    for interval in intervals.values():
        interval.crosses_call = any(interval.start < p < interval.end
                                    for p in call_positions)
    return intervals


class SeedLinearScanAllocator:
    """Classic linear-scan register allocation with furthest-end spilling."""

    def __init__(self, asm: AssemblyFunction):
        self.asm = asm
        self.used_callee_saved: set[str] = set()
        self.spill_slots: dict[str, int] = {}
        self.next_spill_slot = 0

    def run(self) -> None:
        body = self.asm.body
        intervals = seed_compute_live_intervals(body)
        ordered = sorted(intervals.values(), key=lambda iv: iv.start)

        active: list[SeedLiveInterval] = []
        free_caller = list(ALLOCATABLE_CALLER)
        free_callee = list(ALLOCATABLE_CALLEE)

        def expire(position: int) -> None:
            for interval in list(active):
                if interval.end < position:
                    active.remove(interval)
                    if interval.assigned in ALLOCATABLE_CALLER:
                        free_caller.append(interval.assigned)
                    elif interval.assigned in ALLOCATABLE_CALLEE:
                        free_callee.append(interval.assigned)

        for interval in ordered:
            expire(interval.start)
            pools = ([free_callee, free_caller] if interval.crosses_call
                     else [free_caller, free_callee])
            register = None
            for pool in pools:
                if pool:
                    # Don't give a caller-saved register to a call-crossing range.
                    if interval.crosses_call and pool is free_caller:
                        continue
                    register = pool.pop(0)
                    break
            if register is not None:
                interval.assigned = register
                if register in CALLEE_SAVED:
                    self.used_callee_saved.add(register)
                active.append(interval)
                continue
            # Spill: choose between this interval and the active one ending last.
            candidates = [iv for iv in active
                          if not interval.crosses_call or iv.assigned in CALLEE_SAVED]
            victim = max(candidates, key=lambda iv: iv.end, default=None)
            if victim is not None and victim.end > interval.end:
                interval.assigned = victim.assigned
                active.remove(victim)
                active.append(interval)
                victim.assigned = None
                self._assign_spill_slot(victim)
            else:
                self._assign_spill_slot(interval)

        self._rewrite(intervals)

    def _assign_spill_slot(self, interval: SeedLiveInterval) -> None:
        if interval.vreg not in self.spill_slots:
            self.spill_slots[interval.vreg] = self.asm.frame_size + 4 * self.next_spill_slot
            self.next_spill_slot += 1
        interval.spill_slot = self.spill_slots[interval.vreg]

    def _rewrite(self, intervals: dict[str, SeedLiveInterval]) -> None:
        """Replace virtual registers with physical ones; insert spill code."""
        assignment = {iv.vreg: iv.assigned for iv in intervals.values()}
        spills = {iv.vreg: iv.spill_slot for iv in intervals.values()
                  if iv.assigned is None}

        new_body: list = []
        for item in self.asm.body:
            if not isinstance(item, MachineInstr):
                new_body.append(item)
                continue
            def_positions, use_positions = seed_instr_registers(item)
            scratch_pool = list(SPILL_SCRATCH)
            reloads: list[MachineInstr] = []
            stores: list[MachineInstr] = []
            replacements: dict[int, str] = {}

            for pos in use_positions:
                reg = item.operands[pos]
                if not _is_vreg(reg):
                    continue
                if assignment.get(reg):
                    replacements[pos] = assignment[reg]
                else:
                    slot = spills.get(reg, 0)
                    scratch = scratch_pool.pop(0) if scratch_pool else SPILL_SCRATCH[0]
                    reloads.append(MachineInstr("lw", [scratch, slot, "sp"],
                                                comment=f"reload {reg}"))
                    replacements[pos] = scratch

            for pos in def_positions:
                reg = item.operands[pos]
                if not _is_vreg(reg):
                    continue
                if assignment.get(reg):
                    replacements[pos] = assignment[reg]
                else:
                    slot = spills.get(reg, 0)
                    scratch = SPILL_SCRATCH[-1]
                    replacements[pos] = scratch
                    stores.append(MachineInstr("sw", [scratch, slot, "sp"],
                                               comment=f"spill {reg}"))

            for pos, reg in replacements.items():
                item.operands[pos] = reg
            new_body.extend(reloads)
            new_body.append(item)
            new_body.extend(stores)

        self.asm.body = new_body
        self.asm.frame_size += 4 * self.next_spill_slot


def seed_finalize_frame(asm: AssemblyFunction, used_callee_saved: set[str]) -> None:
    """Insert the prologue/epilogue and expand ``ret`` pseudo-instructions."""
    saved = sorted(used_callee_saved) + ["ra"]
    frame = asm.frame_size + 4 * len(saved)
    frame = (frame + 15) & ~15  # 16-byte stack alignment, as the RISC-V ABI requires
    save_base = asm.frame_size

    prologue: list[MachineInstr] = []
    if frame:
        prologue.append(MachineInstr("addi", ["sp", "sp", -frame], comment="prologue"))
    for index, reg in enumerate(saved):
        prologue.append(MachineInstr("sw", [reg, save_base + 4 * index, "sp"],
                                     comment=f"save {reg}"))

    epilogue: list[MachineInstr] = []
    for index, reg in enumerate(saved):
        epilogue.append(MachineInstr("lw", [reg, save_base + 4 * index, "sp"],
                                     comment=f"restore {reg}"))
    if frame:
        epilogue.append(MachineInstr("addi", ["sp", "sp", frame], comment="epilogue"))
    epilogue.append(MachineInstr("jalr", ["zero", "ra", 0], comment="return"))

    new_body: list = list(prologue)
    for item in asm.body:
        if isinstance(item, MachineInstr) and item.opcode == "ret":
            new_body.extend(MachineInstr(i.opcode, list(i.operands), i.comment)
                            for i in epilogue)
        else:
            new_body.append(item)
    asm.body = new_body
    asm.frame_size = frame


def seed_allocate_registers(asm: AssemblyFunction) -> AssemblyFunction:
    """Run register allocation and frame finalization on a lowered function."""
    allocator = SeedLinearScanAllocator(asm)
    allocator.run()
    seed_finalize_frame(asm, allocator.used_callee_saved)
    return asm


def seed_compile_module(module, cost_model=CPU_COST_MODEL):
    """Compile ``module`` exactly as the seed backend did.

    Drop-in replacement for :func:`repro.backend.compile_module` used by the
    ``--seed-backend`` escape hatch, the backend differential tests and
    ``benchmarks/bench_backend.py``.
    """
    program = seed_lower_module(module, cost_model)
    for asm in program.functions.values():
        seed_allocate_registers(asm)
    return program
