"""A small set-associative data cache model (L1-like).

Feeds the conventional-CPU timing model (:mod:`repro.cpu.x86_model`): every
load/store in the emulated trace probes this cache, and misses add the
configured penalty to the instruction's latency — one of the
microarchitectural effects zkVMs do not have, and therefore one source of
the zkVM/CPU divergence the paper's RQ3 studies.
"""

from __future__ import annotations


class DirectMappedCache:
    """A set-associative cache with LRU replacement (name kept for the common
    direct-mapped configuration ``ways=1``)."""

    def __init__(self, size_bytes: int = 32 * 1024, line_bytes: int = 64, ways: int = 4):
        if size_bytes % (line_bytes * ways) != 0:
            raise ValueError("cache size must be a multiple of line size * ways")
        self.line_bytes = line_bytes
        self.ways = ways
        self.sets = size_bytes // (line_bytes * ways)
        # Each set is an ordered list of tags (front = most recently used).
        self._tags: list[list[int]] = [[] for _ in range(self.sets)]
        self.hits = 0
        self.misses = 0

    def access(self, address: int) -> bool:
        """Access ``address``; returns True on hit, False on miss."""
        line = address // self.line_bytes
        index = line % self.sets
        tag = line // self.sets
        entries = self._tags[index]
        if tag in entries:
            entries.remove(tag)
            entries.insert(0, tag)
            self.hits += 1
            return True
        entries.insert(0, tag)
        if len(entries) > self.ways:
            entries.pop()
        self.misses += 1
        return False

    @property
    def hit_rate(self) -> float:
        """Fraction of accesses that hit (1.0 before any access)."""
        total = self.hits + self.misses
        return self.hits / total if total else 1.0

    def reset(self) -> None:
        """Empty the cache and zero the hit/miss counters."""
        self._tags = [[] for _ in range(self.sets)]
        self.hits = 0
        self.misses = 0
