"""Traditional-CPU (x86-class) timing model used for the RQ3 comparison."""

from .x86_model import CpuTimingModel, CpuMetrics, DEFAULT_CPU
from .cache import DirectMappedCache
from .branch_predictor import TwoBitPredictor

__all__ = ["CpuTimingModel", "CpuMetrics", "DEFAULT_CPU",
           "DirectMappedCache", "TwoBitPredictor"]
