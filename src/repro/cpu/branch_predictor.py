"""A classic 2-bit saturating-counter branch predictor.

Used by the conventional-CPU timing model (:mod:`repro.cpu.x86_model`):
every conditional branch in the emulated trace is predicted, and a
misprediction stalls the modelled front end — branch behaviour being
another axis on which CPU and zkVM costs diverge (a zkVM proves the branch
either way; a CPU only pays when it guesses wrong).
"""

from __future__ import annotations


class TwoBitPredictor:
    """Per-branch 2-bit saturating counters, indexed by a branch identifier."""

    # Counter states: 0,1 predict not-taken; 2,3 predict taken.
    def __init__(self, table_size: int = 4096):
        self.table_size = table_size
        self.counters: dict[int, int] = {}
        self.correct = 0
        self.mispredicted = 0

    def predict_and_update(self, branch_id: int, taken: bool) -> bool:
        """Predict the branch, update the counter, return True if predicted
        correctly."""
        index = branch_id % self.table_size
        counter = self.counters.get(index, 1)
        prediction = counter >= 2
        if prediction == taken:
            self.correct += 1
            correct = True
        else:
            self.mispredicted += 1
            correct = False
        if taken:
            counter = min(3, counter + 1)
        else:
            counter = max(0, counter - 1)
        self.counters[index] = counter
        return correct

    @property
    def accuracy(self) -> float:
        """Fraction of branches predicted correctly (1.0 before any)."""
        total = self.correct + self.mispredicted
        return self.correct / total if total else 1.0

    def reset(self) -> None:
        """Forget all counters and zero the accuracy statistics."""
        self.counters.clear()
        self.correct = 0
        self.mispredicted = 0
