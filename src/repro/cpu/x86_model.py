"""A traditional-CPU timing model (x86-class out-of-order core).

The paper's RQ3 compares optimization effects on zkVMs against a conventional
CPU.  We model the conventional CPU as an observer over the same RISC-V
instruction trace, with the hardware features zkVMs lack:

* a superscalar issue width with register-dependency tracking (ILP),
* per-class latencies where division and multiplication are genuinely slow,
* an L1 data cache with a miss penalty,
* a 2-bit branch predictor with a misprediction penalty.

Costing the *same* trace keeps the comparison apples-to-apples at the level
this study cares about (which transformations pay off where), without
building a second backend; the divergent effects — branchless code, strength
reduction, unrolling for ILP — come from the timing model, exactly as they do
on real hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .branch_predictor import TwoBitPredictor
from .cache import DirectMappedCache


@dataclass
class CpuMetrics:
    """Result of costing one trace on the CPU model."""

    cycles: int
    instructions: int
    execution_time: float
    ipc: float
    cache_hit_rate: float
    branch_accuracy: float
    mispredictions: int
    cache_misses: int

    def as_dict(self) -> dict:
        return {
            "cycles": self.cycles,
            "instructions": self.instructions,
            "execution_time": self.execution_time,
            "ipc": self.ipc,
            "cache_hit_rate": self.cache_hit_rate,
            "branch_accuracy": self.branch_accuracy,
        }


@dataclass
class CpuConfig:
    """Microarchitectural parameters of the modelled core.

    The defaults sketch a contemporary desktop-class x86 core: 4-wide
    issue at 3 GHz, single-cycle ALU ops, slow division, an L1 data cache
    with a 40-cycle miss penalty and a 14-cycle branch-misprediction
    penalty.  ``DEFAULT_CPU`` is the instance every measurement uses; its
    ``repr`` feeds the experiment cache fingerprint so parameter changes
    invalidate stale measurements.
    """

    issue_width: int = 4
    frequency_hz: float = 3.0e9
    latency: dict = field(default_factory=lambda: {
        "alu": 1, "mul": 3, "div": 22, "load": 4, "store": 1,
        "branch": 1, "jump": 1, "system": 40,
    })
    l1_hit_cycles: int = 0          # included in the load latency
    l1_miss_penalty: int = 40
    mispredict_penalty: int = 14
    cache_size_bytes: int = 32 * 1024
    cache_line_bytes: int = 64
    cache_ways: int = 8


DEFAULT_CPU = CpuConfig()


class CpuTimingModel:
    """An emulator observer that computes CPU cycles for the executed trace.

    The model is an in-order-issue, out-of-order-completion approximation:
    up to ``issue_width`` instructions issue per cycle, each instruction
    cannot issue before its source registers are ready, and its result
    becomes ready ``latency`` cycles after issue.  Branch mispredictions and
    cache misses stall the front end.
    """

    def __init__(self, config: CpuConfig = DEFAULT_CPU):
        self.config = config
        self.cache = DirectMappedCache(config.cache_size_bytes, config.cache_line_bytes,
                                       config.cache_ways)
        self.predictor = TwoBitPredictor()
        self.register_ready: dict[str, float] = {}
        self.current_cycle: float = 0.0
        self.issued_this_cycle = 0
        self.instructions = 0
        self._branch_counter = 0

    # -- observer interface -----------------------------------------------------
    def on_instruction(self, opcode: str, instruction_class: str,
                       dest: Optional[str], sources: list[str],
                       memory_address: Optional[int], is_store: bool,
                       branch_taken: Optional[bool], pc: int = 0) -> None:
        """Observer hook: cost one executed instruction of the guest trace."""
        config = self.config
        self.instructions += 1

        # Front-end: issue at most `issue_width` instructions per cycle.
        if self.issued_this_cycle >= config.issue_width:
            self.current_cycle += 1
            self.issued_this_cycle = 0

        # Dependencies: cannot issue before source operands are ready.
        ready = self.current_cycle
        for source in sources:
            if source and source != "zero":
                ready = max(ready, self.register_ready.get(source, 0.0))
        if ready > self.current_cycle:
            self.current_cycle = ready
            self.issued_this_cycle = 0

        latency = config.latency.get(instruction_class, 1)

        # Memory: the cache decides whether a load pays the miss penalty.
        if memory_address is not None:
            hit = self.cache.access(memory_address)
            if not hit and not is_store:
                latency += config.l1_miss_penalty
            elif not hit and is_store:
                latency += config.l1_miss_penalty // 4  # write-allocate, buffered

        # Branches: conditional branches consult the predictor; jumps are free-ish.
        if branch_taken is not None and opcode not in ("j",):
            self._branch_counter += 1
            correct = self.predictor.predict_and_update(pc, branch_taken)
            if not correct:
                self.current_cycle += config.mispredict_penalty
                self.issued_this_cycle = 0

        if dest and dest != "zero":
            self.register_ready[dest] = self.current_cycle + latency

        self.issued_this_cycle += 1

    # -- results -------------------------------------------------------------------
    def finalize(self) -> CpuMetrics:
        """Close the run and summarize it as :class:`CpuMetrics`."""
        # Drain: the last instructions' latencies must complete.
        drain = max(self.register_ready.values(), default=self.current_cycle)
        cycles = int(max(self.current_cycle, drain)) + 1
        return CpuMetrics(
            cycles=cycles,
            instructions=self.instructions,
            execution_time=cycles / self.config.frequency_hz,
            ipc=self.instructions / cycles if cycles else 0.0,
            cache_hit_rate=self.cache.hit_rate,
            branch_accuracy=self.predictor.accuracy,
            mispredictions=self.predictor.mispredicted,
            cache_misses=self.cache.misses,
        )
