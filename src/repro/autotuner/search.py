"""A genetic autotuner over pass sequences and numeric compiler flags.

This mirrors the paper's use of OpenTuner (Section 4.2): candidate
configurations are pass sequences up to a bounded depth plus values for the
numeric knobs (inline-threshold, unroll-threshold); the fitness function is
the zkVM *cycle count*, which the paper shows is a cheap and faithful proxy
for execution and proving time.

The search is generational: each generation's population is submitted to the
runner as **one batched shard** via ``measure_pairs``, so an
:class:`~repro.experiments.engine.ExperimentEngine` evaluates the whole
generation across worker processes and memoizes every candidate in the
content-addressed measurement cache.  Because cache keys hash the pass list
and knobs (not the candidate's name), re-discovered configurations — and
entire re-runs with the same seed — cost nothing to re-evaluate.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import asdict, dataclass, field
from typing import Callable, Optional

from ..passes import PassConfig, available_passes
from ..experiments.journal import CampaignJournal
from ..experiments.profiles import Profile, custom_profile
from ..experiments.runner import BenchmarkRunner

#: Process-wide candidate-profile id supply (see evaluate_generation).
_CANDIDATE_IDS = itertools.count()


@dataclass
class TuningSpace:
    """The search space: which passes may appear and the numeric knob ranges."""

    passes: tuple[str, ...] = ()
    max_depth: int = 20
    inline_threshold_range: tuple[int, int] = (25, 5000)
    unroll_threshold_range: tuple[int, int] = (0, 1000)

    def __post_init__(self):
        if not self.passes:
            self.passes = tuple(available_passes())


@dataclass
class Candidate:
    """One configuration in the population."""

    passes: list[str]
    inline_threshold: int
    unroll_threshold: int
    fitness: Optional[float] = None

    def to_profile(self, name: str) -> Profile:
        config = PassConfig(inline_threshold=self.inline_threshold,
                            unroll_threshold=self.unroll_threshold)
        return custom_profile(name, self.passes, config)


@dataclass
class AutotuneResult:
    """Outcome of one autotuning run."""

    benchmark: str
    zkvm: str
    best: Candidate
    best_cycles: int
    baseline_cycles: int
    o3_cycles: int
    evaluations: int
    history: list = field(default_factory=list)

    @property
    def speedup_over_o3(self) -> float:
        return self.o3_cycles / self.best_cycles if self.best_cycles else 1.0

    @property
    def gain_over_o3_percent(self) -> float:
        if self.o3_cycles == 0:
            return 0.0
        return (self.o3_cycles - self.best_cycles) / self.o3_cycles * 100.0


class GeneticAutotuner:
    """Population-based search over pass sequences.

    Pass an :class:`~repro.experiments.engine.ExperimentEngine` as ``runner``
    to evaluate each generation in parallel and persist every candidate
    measurement; a plain :class:`BenchmarkRunner` evaluates the same batches
    serially.  ``generation_size`` controls how many children are bred (and
    measured as one shard) per generation.
    """

    def __init__(self, runner: Optional[BenchmarkRunner] = None,
                 space: Optional[TuningSpace] = None,
                 population_size: int = 12, seed: int = 0,
                 zkvm: str = "risc0",
                 generation_size: Optional[int] = None,
                 size_weight: float = 0.0):
        self.runner = runner or BenchmarkRunner()
        self.space = space or TuningSpace()
        self.population_size = population_size
        self.generation_size = generation_size or max(2, population_size // 2)
        self.seed = seed
        self.random = random.Random(seed)
        self.zkvm = zkvm
        #: Weight of the RVC binary footprint in candidate fitness:
        #: ``cycles + size_weight * code_bytes``.  0.0 preserves the
        #: historical cycles-only objective; positive values trade cycles
        #: for smaller guest images (the paper's zkVM setting prices both).
        self.size_weight = size_weight
        self.evaluations = 0

    # -- candidate construction -------------------------------------------------
    def random_candidate(self) -> Candidate:
        """A uniformly random pass sequence plus random knob values."""
        depth = self.random.randint(1, self.space.max_depth)
        passes = [self.random.choice(self.space.passes) for _ in range(depth)]
        return Candidate(
            passes=passes,
            inline_threshold=self.random.randint(*self.space.inline_threshold_range),
            unroll_threshold=self.random.randint(*self.space.unroll_threshold_range),
        )

    def mutate(self, candidate: Candidate) -> Candidate:
        """Replace/insert/drop one pass and occasionally re-roll the knobs."""
        passes = list(candidate.passes)
        op = self.random.random()
        if op < 0.3 and passes:
            passes[self.random.randrange(len(passes))] = self.random.choice(self.space.passes)
        elif op < 0.55 and len(passes) < self.space.max_depth:
            passes.insert(self.random.randrange(len(passes) + 1),
                          self.random.choice(self.space.passes))
        elif op < 0.8 and len(passes) > 1:
            passes.pop(self.random.randrange(len(passes)))
        inline_threshold = candidate.inline_threshold
        unroll_threshold = candidate.unroll_threshold
        if self.random.random() < 0.3:
            inline_threshold = self.random.randint(*self.space.inline_threshold_range)
        if self.random.random() < 0.3:
            unroll_threshold = self.random.randint(*self.space.unroll_threshold_range)
        return Candidate(passes, inline_threshold, unroll_threshold)

    def crossover(self, a: Candidate, b: Candidate) -> Candidate:
        """Splice a prefix of ``a`` onto a suffix of ``b``, inheriting knobs."""
        if a.passes and b.passes:
            cut_a = self.random.randrange(len(a.passes) + 1)
            cut_b = self.random.randrange(len(b.passes) + 1)
            passes = (a.passes[:cut_a] + b.passes[cut_b:])[: self.space.max_depth]
        else:
            passes = list(a.passes or b.passes)
        return Candidate(passes or [self.random.choice(self.space.passes)],
                         self.random.choice([a.inline_threshold, b.inline_threshold]),
                         self.random.choice([a.unroll_threshold, b.unroll_threshold]))

    def _breed(self, survivors: list[Candidate]) -> Candidate:
        """One child for the next generation: mutation or survivor crossover."""
        if self.random.random() < 0.5 or len(survivors) < 2:
            return self.mutate(self.random.choice(survivors))
        return self.crossover(*self.random.sample(survivors, 2))

    # -- fitness ----------------------------------------------------------------
    def fitness(self, benchmark: str, candidate: Candidate) -> float:
        """Evaluate one candidate: its zkVM total cycle count (inf on failure)."""
        self.evaluate_generation(benchmark, [candidate])
        return candidate.fitness

    def evaluate_generation(self, benchmark: str,
                            candidates: list[Candidate]) -> None:
        """Measure a generation's candidates as one batched shard.

        The whole batch goes through ``runner.measure_pairs`` with
        ``on_error="none"``: an engine shards it across workers, and a
        candidate whose compilation or emulation fails (e.g. it blows the
        instruction budget) gets infinite fitness instead of aborting the
        search.  Fitness is written onto each candidate in place.
        """
        pairs = []
        for candidate in candidates:
            # Names are unique across every tuner in the process: name-keyed
            # runner caches must never alias two different candidates (the
            # engine's content-addressed cache still dedups equal ones).
            pairs.append((benchmark,
                          candidate.to_profile(f"tuned-{next(_CANDIDATE_IDS)}")))
            self.evaluations += 1
        measurements = self.runner.measure_pairs(pairs, on_error="none")
        for candidate, measurement in zip(candidates, measurements):
            if measurement is None:
                candidate.fitness = float("inf")
            else:
                candidate.fitness = self._objective(measurement)

    def _objective(self, measurement) -> float:
        """Candidate fitness: proven cycles plus the weighted binary size."""
        cycles = float(measurement.metric(self.zkvm, "total_cycles"))
        if not self.size_weight:
            return cycles
        sizes = measurement.code_bytes or {}
        return cycles + self.size_weight * float(sizes.get("rvc", 0))

    # -- checkpointing ----------------------------------------------------------
    def _tune_fingerprint(self, benchmark: str) -> dict:
        """Search identity for journals — everything but the budget.

        ``iterations`` is deliberately excluded so a resumed run can *extend*
        a finished search with a larger budget instead of starting over.
        """
        space = {key: list(value) if isinstance(value, tuple) else value
                 for key, value in asdict(self.space).items()}
        return {"kind": "autotune", "benchmark": benchmark, "seed": self.seed,
                "zkvm": self.zkvm, "population_size": self.population_size,
                "generation_size": self.generation_size,
                "size_weight": self.size_weight, "space": space}

    def _record_generation(self, journal, evaluated: int,
                           population: list, history: list) -> None:
        """Checkpoint one completed generation (population + RNG state).

        The RNG state makes resumption *exact*: the continued search breeds
        the same children an uninterrupted run would have.
        """
        if journal is None:
            return
        state = self.random.getstate()
        journal.record({
            "type": "generation", "evaluated": evaluated,
            "population": [{"passes": list(c.passes),
                            "inline_threshold": c.inline_threshold,
                            "unroll_threshold": c.unroll_threshold,
                            "fitness": c.fitness} for c in population],
            "history": [[count, fitness] for count, fitness in history],
            "rng": [state[0], list(state[1]), state[2]],
        })

    # -- search ---------------------------------------------------------------------
    def tune(self, benchmark: str, iterations: int = 40,
             journal=None, resume: bool = False) -> AutotuneResult:
        """Run the genetic search for (at most) ``iterations`` evaluations.

        The initial population and every subsequent generation of children
        are each evaluated as one batched shard (parallel under an engine;
        see :meth:`evaluate_generation`).

        ``journal`` (a path or :class:`CampaignJournal`) checkpoints every
        finished generation; ``resume=True`` restores the latest checkpoint —
        population, fitness history and RNG state — and continues toward
        ``iterations``, reproducing the uninterrupted search exactly (the
        journal must come from the same benchmark/seed/space, else
        :class:`~repro.experiments.journal.JournalMismatch`).  Combined with
        an engine's measurement cache, the replayed work costs nothing.
        """
        from ..experiments.profiles import baseline_profile, profile_by_name

        if journal is not None and not isinstance(journal, CampaignJournal):
            journal = CampaignJournal(journal)
        checkpoints = []
        if journal is not None:
            checkpoints = [record for record
                           in journal.open(self._tune_fingerprint(benchmark),
                                           resume=resume)
                           if record.get("type") == "generation"]

        try:
            baseline = self.runner.measure(benchmark, baseline_profile())
            o3 = self.runner.measure(benchmark, profile_by_name("-O3"))
            baseline_cycles = int(baseline.metric(self.zkvm, "total_cycles"))
            o3_cycles = int(o3.metric(self.zkvm, "total_cycles"))

            if checkpoints:
                latest = checkpoints[-1]
                population = [Candidate(**entry)
                              for entry in latest["population"]]
                evaluated = latest["evaluated"]
                history = [tuple(item) for item in latest["history"]]
                rng = latest["rng"]
                self.random.setstate((rng[0], tuple(rng[1]), rng[2]))
                self.evaluations += evaluated
            else:
                population = [self.random_candidate()
                              for _ in range(self.population_size)]
                # Seed the population with the -O3 sequence so the search
                # starts from a strong configuration (OpenTuner does the same
                # with -O3 as a baseline).
                from ..passes import OPTIMIZATION_LEVELS
                population[0] = Candidate(
                    list(OPTIMIZATION_LEVELS["-O3"])[: self.space.max_depth],
                    inline_threshold=325, unroll_threshold=300)

                history = []
                # Always evaluate at least one candidate so a tiny/zero budget
                # still yields a well-formed result (the -O3 seed).
                population = population[: max(1, iterations)]
                self.evaluate_generation(benchmark, population)
                evaluated = len(population)
                best = min(population, key=lambda c: c.fitness
                           if c.fitness is not None else float("inf"))
                history.append((evaluated, best.fitness))
                self._record_generation(journal, evaluated, population, history)

            while evaluated < iterations:
                population.sort(key=lambda c: c.fitness
                                if c.fitness is not None else float("inf"))
                survivors = population[: max(2, self.population_size // 3)]
                children = [self._breed(survivors)
                            for _ in range(min(self.generation_size,
                                               iterations - evaluated))]
                self.evaluate_generation(benchmark, children)
                evaluated += len(children)
                population.extend(children)
                best = min(population, key=lambda c: c.fitness
                           if c.fitness is not None else float("inf"))
                history.append((evaluated, best.fitness))
                self._record_generation(journal, evaluated, population, history)
        finally:
            if journal is not None:
                journal.close()

        population.sort(key=lambda c: c.fitness if c.fitness is not None else float("inf"))
        best = population[0]
        return AutotuneResult(
            benchmark=benchmark, zkvm=self.zkvm, best=best,
            best_cycles=int(best.fitness if best.fitness not in (None, float("inf"))
                            else baseline_cycles),
            baseline_cycles=baseline_cycles, o3_cycles=o3_cycles,
            evaluations=evaluated, history=history,
        )
