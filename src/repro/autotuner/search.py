"""A genetic autotuner over pass sequences and numeric compiler flags.

This mirrors the paper's use of OpenTuner (Section 4.2): candidate
configurations are pass sequences up to a bounded depth plus values for the
numeric knobs (inline-threshold, unroll-threshold); the fitness function is
the zkVM *cycle count*, which the paper shows is a cheap and faithful proxy
for execution and proving time.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..passes import PassConfig, available_passes
from ..experiments.profiles import Profile, custom_profile
from ..experiments.runner import BenchmarkRunner


@dataclass
class TuningSpace:
    """The search space: which passes may appear and the numeric knob ranges."""

    passes: tuple[str, ...] = ()
    max_depth: int = 20
    inline_threshold_range: tuple[int, int] = (25, 5000)
    unroll_threshold_range: tuple[int, int] = (0, 1000)

    def __post_init__(self):
        if not self.passes:
            self.passes = tuple(available_passes())


@dataclass
class Candidate:
    """One configuration in the population."""

    passes: list[str]
    inline_threshold: int
    unroll_threshold: int
    fitness: Optional[float] = None

    def to_profile(self, name: str) -> Profile:
        config = PassConfig(inline_threshold=self.inline_threshold,
                            unroll_threshold=self.unroll_threshold)
        return custom_profile(name, self.passes, config)


@dataclass
class AutotuneResult:
    """Outcome of one autotuning run."""

    benchmark: str
    zkvm: str
    best: Candidate
    best_cycles: int
    baseline_cycles: int
    o3_cycles: int
    evaluations: int
    history: list = field(default_factory=list)

    @property
    def speedup_over_o3(self) -> float:
        return self.o3_cycles / self.best_cycles if self.best_cycles else 1.0

    @property
    def gain_over_o3_percent(self) -> float:
        if self.o3_cycles == 0:
            return 0.0
        return (self.o3_cycles - self.best_cycles) / self.o3_cycles * 100.0


class GeneticAutotuner:
    """Population-based search over pass sequences."""

    def __init__(self, runner: Optional[BenchmarkRunner] = None,
                 space: Optional[TuningSpace] = None,
                 population_size: int = 12, seed: int = 0,
                 zkvm: str = "risc0"):
        self.runner = runner or BenchmarkRunner()
        self.space = space or TuningSpace()
        self.population_size = population_size
        self.random = random.Random(seed)
        self.zkvm = zkvm
        self.evaluations = 0

    # -- candidate construction -------------------------------------------------
    def random_candidate(self) -> Candidate:
        depth = self.random.randint(1, self.space.max_depth)
        passes = [self.random.choice(self.space.passes) for _ in range(depth)]
        return Candidate(
            passes=passes,
            inline_threshold=self.random.randint(*self.space.inline_threshold_range),
            unroll_threshold=self.random.randint(*self.space.unroll_threshold_range),
        )

    def mutate(self, candidate: Candidate) -> Candidate:
        passes = list(candidate.passes)
        op = self.random.random()
        if op < 0.3 and passes:
            passes[self.random.randrange(len(passes))] = self.random.choice(self.space.passes)
        elif op < 0.55 and len(passes) < self.space.max_depth:
            passes.insert(self.random.randrange(len(passes) + 1),
                          self.random.choice(self.space.passes))
        elif op < 0.8 and len(passes) > 1:
            passes.pop(self.random.randrange(len(passes)))
        inline_threshold = candidate.inline_threshold
        unroll_threshold = candidate.unroll_threshold
        if self.random.random() < 0.3:
            inline_threshold = self.random.randint(*self.space.inline_threshold_range)
        if self.random.random() < 0.3:
            unroll_threshold = self.random.randint(*self.space.unroll_threshold_range)
        return Candidate(passes, inline_threshold, unroll_threshold)

    def crossover(self, a: Candidate, b: Candidate) -> Candidate:
        if a.passes and b.passes:
            cut_a = self.random.randrange(len(a.passes) + 1)
            cut_b = self.random.randrange(len(b.passes) + 1)
            passes = (a.passes[:cut_a] + b.passes[cut_b:])[: self.space.max_depth]
        else:
            passes = list(a.passes or b.passes)
        return Candidate(passes or [self.random.choice(self.space.passes)],
                         self.random.choice([a.inline_threshold, b.inline_threshold]),
                         self.random.choice([a.unroll_threshold, b.unroll_threshold]))

    # -- fitness ----------------------------------------------------------------
    def fitness(self, benchmark: str, candidate: Candidate) -> float:
        profile = candidate.to_profile(f"tuned-{self.evaluations}")
        self.evaluations += 1
        try:
            measurement = self.runner.measure(benchmark, profile, use_cache=False)
        except Exception:
            return float("inf")
        return float(measurement.metric(self.zkvm, "total_cycles"))

    # -- search ---------------------------------------------------------------------
    def tune(self, benchmark: str, iterations: int = 40) -> AutotuneResult:
        """Run the genetic search for ``iterations`` fitness evaluations."""
        from ..experiments.profiles import baseline_profile, profile_by_name

        baseline = self.runner.measure(benchmark, baseline_profile())
        o3 = self.runner.measure(benchmark, profile_by_name("-O3"))
        baseline_cycles = int(baseline.metric(self.zkvm, "total_cycles"))
        o3_cycles = int(o3.metric(self.zkvm, "total_cycles"))

        population = [self.random_candidate() for _ in range(self.population_size)]
        # Seed the population with the -O3 sequence so the search starts from a
        # strong configuration (OpenTuner does the same with -O3 as a baseline).
        from ..passes import OPTIMIZATION_LEVELS
        population[0] = Candidate(list(OPTIMIZATION_LEVELS["-O3"])[: self.space.max_depth],
                                  inline_threshold=325, unroll_threshold=300)

        history = []
        evaluated = 0
        for candidate in population:
            candidate.fitness = self.fitness(benchmark, candidate)
            evaluated += 1
            if evaluated >= iterations:
                break

        while evaluated < iterations:
            population.sort(key=lambda c: c.fitness if c.fitness is not None else float("inf"))
            survivors = population[: max(2, self.population_size // 3)]
            child_source = self.random.random()
            if child_source < 0.5:
                child = self.mutate(self.random.choice(survivors))
            else:
                child = self.crossover(*self.random.sample(survivors, 2)) \
                    if len(survivors) >= 2 else self.mutate(survivors[0])
            child.fitness = self.fitness(benchmark, child)
            evaluated += 1
            population.append(child)
            best = min(population, key=lambda c: c.fitness or float("inf"))
            history.append((evaluated, best.fitness))

        population.sort(key=lambda c: c.fitness if c.fitness is not None else float("inf"))
        best = population[0]
        return AutotuneResult(
            benchmark=benchmark, zkvm=self.zkvm, best=best,
            best_cycles=int(best.fitness if best.fitness not in (None, float("inf"))
                            else baseline_cycles),
            baseline_cycles=baseline_cycles, o3_cycles=o3_cycles,
            evaluations=evaluated, history=history,
        )
