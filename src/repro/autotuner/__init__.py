"""Genetic autotuning of optimization pass sequences (OpenTuner-style)."""

from .search import AutotuneResult, GeneticAutotuner, TuningSpace

__all__ = ["AutotuneResult", "GeneticAutotuner", "TuningSpace"]
