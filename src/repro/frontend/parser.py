"""Recursive-descent parser for MiniC.

Grammar (informal):

    program     := (global_decl | const_decl | function)*
    global_decl := 'global' IDENT '[' NUMBER ']' ('=' '{' numbers '}')? ';'
                 | 'global' IDENT ('=' NUMBER)? ';'
    const_decl  := 'const' IDENT '=' expr ';'            (constant-folded)
    function    := ('inline')? 'fn' IDENT '(' params ')' ('->' 'int')? block
    statement   := var_decl | assign | if | while | for | return
                 | break | continue | expr ';'
    expression  := the usual C precedence for || && | ^ & == != < <= > >=
                   << >> + - * / % and unary - ! ~
"""

from __future__ import annotations

from typing import Optional

from . import ast_nodes as ast
from .errors import ParseError
from .lexer import Token, tokenize


class Parser:
    """Parses a token stream into a :class:`Program`."""

    def __init__(self, source: str):
        self.tokens = tokenize(source)
        self.position = 0
        self.constants: dict[str, int] = {}

    # -- token helpers -------------------------------------------------------
    @property
    def current(self) -> Token:
        return self.tokens[self.position]

    def advance(self) -> Token:
        token = self.current
        self.position += 1
        return token

    def check(self, kind: str, value: Optional[str] = None) -> bool:
        token = self.current
        return token.kind == kind and (value is None or token.value == value)

    def accept(self, kind: str, value: Optional[str] = None) -> Optional[Token]:
        if self.check(kind, value):
            return self.advance()
        return None

    def expect(self, kind: str, value: Optional[str] = None) -> Token:
        if self.check(kind, value):
            return self.advance()
        expected = value or kind
        raise ParseError(f"expected {expected!r}, found {self.current.value!r}",
                         self.current.line, self.current.column)

    # -- top level -------------------------------------------------------------
    def parse_program(self) -> ast.Program:
        program = ast.Program()
        while not self.check("eof"):
            if self.check("keyword", "global"):
                program.globals.append(self.parse_global())
            elif self.check("keyword", "const"):
                program.constants.append(self.parse_const())
            elif self.check("ident", "inline") or self.check("keyword", "fn"):
                program.functions.append(self.parse_function())
            else:
                raise ParseError(f"unexpected token {self.current.value!r} at top level",
                                 self.current.line, self.current.column)
        return program

    def parse_global(self) -> ast.GlobalDecl:
        line = self.expect("keyword", "global").line
        name = self.expect("ident").value
        count = 1
        initializer: Optional[list[int]] = None
        if self.accept("op", "["):
            count = self._constant_expression()
            self.expect("op", "]")
        if self.accept("op", "="):
            if self.accept("op", "{"):
                initializer = []
                if not self.check("op", "}"):
                    initializer.append(self._constant_expression())
                    while self.accept("op", ","):
                        initializer.append(self._constant_expression())
                self.expect("op", "}")
                if len(initializer) < count:
                    initializer = initializer + [0] * (count - len(initializer))
            else:
                initializer = [self._constant_expression()] + [0] * (count - 1)
        self.expect("op", ";")
        return ast.GlobalDecl(line=line, name=name, count=count, initializer=initializer)

    def parse_const(self) -> ast.ConstDecl:
        line = self.expect("keyword", "const").line
        name = self.expect("ident").value
        self.expect("op", "=")
        value = self._constant_expression()
        self.expect("op", ";")
        self.constants[name] = value
        return ast.ConstDecl(line=line, name=name, value=value)

    def parse_function(self) -> ast.FunctionDecl:
        inline_always = bool(self.accept("ident", "inline"))
        line = self.expect("keyword", "fn").line
        name = self.expect("ident").value
        self.expect("op", "(")
        params: list[ast.Param] = []
        if not self.check("op", ")"):
            params.append(self._parse_param())
            while self.accept("op", ","):
                params.append(self._parse_param())
        self.expect("op", ")")
        returns_value = False
        if self.accept("op", "->"):
            self.expect("keyword", "int")
            returns_value = True
        body = self.parse_block()
        return ast.FunctionDecl(line=line, name=name, params=params,
                                returns_value=returns_value, body=body,
                                inline_always=inline_always)

    def _parse_param(self) -> ast.Param:
        token = self.expect("ident")
        if self.accept("op", ":"):
            self.expect("keyword", "int")
        return ast.Param(line=token.line, name=token.value)

    # -- statements --------------------------------------------------------------
    def parse_block(self) -> list[ast.Node]:
        self.expect("op", "{")
        statements: list[ast.Node] = []
        while not self.check("op", "}"):
            statements.append(self.parse_statement())
        self.expect("op", "}")
        return statements

    def parse_statement(self) -> ast.Node:
        if self.check("keyword", "var"):
            return self.parse_var_decl()
        if self.check("keyword", "if"):
            return self.parse_if()
        if self.check("keyword", "while"):
            return self.parse_while()
        if self.check("keyword", "for"):
            return self.parse_for()
        if self.check("keyword", "return"):
            line = self.advance().line
            value = None
            if not self.check("op", ";"):
                value = self.parse_expression()
            self.expect("op", ";")
            return ast.ReturnStmt(line=line, value=value)
        if self.check("keyword", "break"):
            line = self.advance().line
            self.expect("op", ";")
            return ast.BreakStmt(line=line)
        if self.check("keyword", "continue"):
            line = self.advance().line
            self.expect("op", ";")
            return ast.ContinueStmt(line=line)
        return self.parse_assign_or_expr()

    def parse_var_decl(self) -> ast.VarDecl:
        line = self.expect("keyword", "var").line
        name = self.expect("ident").value
        if self.accept("op", "["):
            size = self._constant_expression()
            self.expect("op", "]")
            self.expect("op", ";")
            return ast.VarDecl(line=line, name=name, array_size=size)
        if self.accept("op", ":"):
            self.expect("keyword", "int")
        init = None
        if self.accept("op", "="):
            init = self.parse_expression()
        self.expect("op", ";")
        return ast.VarDecl(line=line, name=name, init=init)

    def parse_if(self) -> ast.IfStmt:
        line = self.expect("keyword", "if").line
        self.expect("op", "(")
        condition = self.parse_expression()
        self.expect("op", ")")
        then_body = self.parse_block()
        else_body: list[ast.Node] = []
        if self.accept("keyword", "else"):
            if self.check("keyword", "if"):
                else_body = [self.parse_if()]
            else:
                else_body = self.parse_block()
        return ast.IfStmt(line=line, condition=condition,
                          then_body=then_body, else_body=else_body)

    def parse_while(self) -> ast.WhileStmt:
        line = self.expect("keyword", "while").line
        self.expect("op", "(")
        condition = self.parse_expression()
        self.expect("op", ")")
        body = self.parse_block()
        return ast.WhileStmt(line=line, condition=condition, body=body)

    def parse_for(self) -> ast.ForStmt:
        line = self.expect("keyword", "for").line
        self.expect("op", "(")
        init: Optional[ast.Node] = None
        if not self.check("op", ";"):
            if self.check("keyword", "var"):
                init = self.parse_var_decl()
            else:
                init = self._parse_simple_assign()
                self.expect("op", ";")
        else:
            self.expect("op", ";")
        condition: Optional[ast.Node] = None
        if not self.check("op", ";"):
            condition = self.parse_expression()
        self.expect("op", ";")
        step: Optional[ast.Node] = None
        if not self.check("op", ")"):
            step = self._parse_simple_assign()
        self.expect("op", ")")
        body = self.parse_block()
        return ast.ForStmt(line=line, init=init, condition=condition, step=step, body=body)

    def parse_assign_or_expr(self) -> ast.Node:
        start = self.position
        line = self.current.line
        expr = self.parse_expression()
        if self.check("op", "=") and isinstance(expr, (ast.VarExpr, ast.IndexExpr)):
            self.advance()
            value = self.parse_expression()
            self.expect("op", ";")
            return ast.Assign(line=line, target=expr, value=value)
        self.expect("op", ";")
        return ast.ExprStmt(line=line, expr=expr)

    def _parse_simple_assign(self) -> ast.Node:
        """An assignment without a trailing ';' (used in for-loop clauses)."""
        line = self.current.line
        expr = self.parse_expression()
        if self.check("op", "=") and isinstance(expr, (ast.VarExpr, ast.IndexExpr)):
            self.advance()
            value = self.parse_expression()
            return ast.Assign(line=line, target=expr, value=value)
        return ast.ExprStmt(line=line, expr=expr)

    # -- expressions --------------------------------------------------------------
    # Precedence climbing, lowest first.
    _BINARY_LEVELS = [
        ("||",),
        ("&&",),
        ("|",),
        ("^",),
        ("&",),
        ("==", "!="),
        ("<", "<=", ">", ">="),
        ("<<", ">>", ">>>"),
        ("+", "-"),
        ("*", "/", "%"),
    ]

    def parse_expression(self) -> ast.Node:
        return self._parse_binary(0)

    def _parse_binary(self, level: int) -> ast.Node:
        if level >= len(self._BINARY_LEVELS):
            return self._parse_unary()
        ops = self._BINARY_LEVELS[level]
        lhs = self._parse_binary(level + 1)
        while self.current.kind == "op" and self.current.value in ops:
            op = self.advance().value
            rhs = self._parse_binary(level + 1)
            lhs = ast.BinaryExpr(line=lhs.line, op=op, lhs=lhs, rhs=rhs)
        return lhs

    def _parse_unary(self) -> ast.Node:
        if self.current.kind == "op" and self.current.value in ("-", "!", "~"):
            op = self.advance()
            operand = self._parse_unary()
            return ast.UnaryExpr(line=op.line, op=op.value, operand=operand)
        return self._parse_primary()

    def _parse_primary(self) -> ast.Node:
        token = self.current
        if token.kind == "number":
            self.advance()
            return ast.NumberExpr(line=token.line, value=int(token.value, 0))
        if token.kind == "ident":
            self.advance()
            if token.value in self.constants and not self.check("op", "(") \
                    and not self.check("op", "["):
                return ast.NumberExpr(line=token.line, value=self.constants[token.value])
            if self.accept("op", "("):
                args: list[ast.Node] = []
                if not self.check("op", ")"):
                    args.append(self.parse_expression())
                    while self.accept("op", ","):
                        args.append(self.parse_expression())
                self.expect("op", ")")
                return ast.CallExpr(line=token.line, callee=token.value, args=args)
            if self.accept("op", "["):
                index = self.parse_expression()
                self.expect("op", "]")
                return ast.IndexExpr(line=token.line, name=token.value, index=index)
            return ast.VarExpr(line=token.line, name=token.value)
        if self.accept("op", "("):
            expr = self.parse_expression()
            self.expect("op", ")")
            return expr
        raise ParseError(f"unexpected token {token.value!r} in expression",
                         token.line, token.column)

    # -- compile-time constants ------------------------------------------------
    def _constant_expression(self) -> int:
        expr = self.parse_expression()
        return self._fold(expr)

    def _fold(self, expr: ast.Node) -> int:
        if isinstance(expr, ast.NumberExpr):
            return expr.value
        if isinstance(expr, ast.VarExpr) and expr.name in self.constants:
            return self.constants[expr.name]
        if isinstance(expr, ast.UnaryExpr):
            value = self._fold(expr.operand)  # type: ignore[arg-type]
            if expr.op == "-":
                return -value
            if expr.op == "~":
                return ~value
            if expr.op == "!":
                return int(value == 0)
        if isinstance(expr, ast.BinaryExpr):
            lhs = self._fold(expr.lhs)  # type: ignore[arg-type]
            rhs = self._fold(expr.rhs)  # type: ignore[arg-type]
            folders = {
                "+": lambda: lhs + rhs, "-": lambda: lhs - rhs,
                "*": lambda: lhs * rhs, "/": lambda: lhs // rhs if rhs else 0,
                "%": lambda: lhs % rhs if rhs else 0,
                "<<": lambda: lhs << rhs, ">>": lambda: lhs >> rhs,
                "&": lambda: lhs & rhs, "|": lambda: lhs | rhs, "^": lambda: lhs ^ rhs,
            }
            if expr.op in folders:
                return folders[expr.op]()
        raise ParseError("expression is not a compile-time constant", expr.line)


def parse(source: str) -> ast.Program:
    """Parse MiniC source text into an AST."""
    return Parser(source).parse_program()
