"""Abstract syntax tree node definitions for MiniC."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass
class Node:
    """Base class of all AST nodes."""

    line: int = 0


# -- expressions -------------------------------------------------------------
@dataclass
class NumberExpr(Node):
    value: int = 0


@dataclass
class VarExpr(Node):
    name: str = ""


@dataclass
class IndexExpr(Node):
    """Array indexing: ``base[index]`` where base is a named array."""

    name: str = ""
    index: "Node | None" = None


@dataclass
class UnaryExpr(Node):
    op: str = ""
    operand: "Node | None" = None


@dataclass
class BinaryExpr(Node):
    op: str = ""
    lhs: "Node | None" = None
    rhs: "Node | None" = None


@dataclass
class CallExpr(Node):
    callee: str = ""
    args: list["Node"] = field(default_factory=list)


# -- statements --------------------------------------------------------------
@dataclass
class VarDecl(Node):
    """``var name: int = init;`` or ``var name[count];`` (local array)."""

    name: str = ""
    array_size: Optional[int] = None
    init: "Node | None" = None


@dataclass
class Assign(Node):
    """Assignment to a scalar variable or an array element."""

    target: "Node | None" = None  # VarExpr or IndexExpr
    value: "Node | None" = None


@dataclass
class IfStmt(Node):
    condition: "Node | None" = None
    then_body: list["Node"] = field(default_factory=list)
    else_body: list["Node"] = field(default_factory=list)


@dataclass
class WhileStmt(Node):
    condition: "Node | None" = None
    body: list["Node"] = field(default_factory=list)


@dataclass
class ForStmt(Node):
    init: "Node | None" = None
    condition: "Node | None" = None
    step: "Node | None" = None
    body: list["Node"] = field(default_factory=list)


@dataclass
class ReturnStmt(Node):
    value: "Node | None" = None


@dataclass
class BreakStmt(Node):
    pass


@dataclass
class ContinueStmt(Node):
    pass


@dataclass
class ExprStmt(Node):
    expr: "Node | None" = None


# -- top-level ---------------------------------------------------------------
@dataclass
class GlobalDecl(Node):
    """``global name[count];`` optionally with an initializer list."""

    name: str = ""
    count: int = 1
    initializer: Optional[list[int]] = None


@dataclass
class ConstDecl(Node):
    """``const NAME = value;`` — a compile-time integer constant."""

    name: str = ""
    value: int = 0


@dataclass
class Param(Node):
    name: str = ""


@dataclass
class FunctionDecl(Node):
    name: str = ""
    params: list[Param] = field(default_factory=list)
    returns_value: bool = True
    body: list[Node] = field(default_factory=list)
    inline_always: bool = False


@dataclass
class Program(Node):
    globals: list[GlobalDecl] = field(default_factory=list)
    constants: list[ConstDecl] = field(default_factory=list)
    functions: list[FunctionDecl] = field(default_factory=list)
