"""Lexer for MiniC, the small C-like guest language used by the benchmarks."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from .errors import LexerError

KEYWORDS = frozenset({
    "fn", "var", "global", "int", "if", "else", "while", "for", "return",
    "break", "continue", "const",
})

# Multi-character operators must be listed before their prefixes.
OPERATORS = (
    ">>>", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "<", ">", "=",
    "(", ")", "{", "}", "[", "]", ",", ";", ":", "->",
)
# '->' must be matched before '-'; rebuild the list in greedy order.
_SORTED_OPERATORS = sorted(OPERATORS, key=len, reverse=True)


@dataclass(frozen=True)
class Token:
    """A single lexical token."""

    kind: str  # 'ident', 'number', 'keyword', 'op', 'eof'
    value: str
    line: int
    column: int

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Token({self.kind}, {self.value!r}, {self.line}:{self.column})"


def tokenize(source: str) -> list[Token]:
    """Convert MiniC source text into a list of tokens (ending with 'eof')."""
    tokens: list[Token] = []
    line, column = 1, 1
    i = 0
    length = len(source)

    while i < length:
        ch = source[i]

        # Whitespace.
        if ch in " \t\r":
            i += 1
            column += 1
            continue
        if ch == "\n":
            i += 1
            line += 1
            column = 1
            continue

        # Comments: // to end of line, /* ... */ block comments.
        if source.startswith("//", i):
            while i < length and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end == -1:
                raise LexerError("unterminated block comment", line, column)
            skipped = source[i:end + 2]
            line += skipped.count("\n")
            if "\n" in skipped:
                column = len(skipped) - skipped.rfind("\n")
            else:
                column += len(skipped)
            i = end + 2
            continue

        # Numbers (decimal and hexadecimal).
        if ch.isdigit():
            start = i
            if source.startswith("0x", i) or source.startswith("0X", i):
                i += 2
                while i < length and (source[i].isdigit() or source[i].lower() in "abcdef"):
                    i += 1
            else:
                while i < length and source[i].isdigit():
                    i += 1
            text = source[start:i]
            tokens.append(Token("number", text, line, column))
            column += i - start
            continue

        # Identifiers and keywords.
        if ch.isalpha() or ch == "_":
            start = i
            while i < length and (source[i].isalnum() or source[i] == "_"):
                i += 1
            text = source[start:i]
            kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, line, column))
            column += i - start
            continue

        # Operators and punctuation.
        for op in _SORTED_OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token("op", op, line, column))
                i += len(op)
                column += len(op)
                break
        else:
            raise LexerError(f"unexpected character {ch!r}", line, column)

    tokens.append(Token("eof", "", line, column))
    return tokens


def token_values(source: str) -> Iterator[str]:
    """Yield the raw token values of a source string (testing helper)."""
    for token in tokenize(source):
        if token.kind != "eof":
            yield token.value
