"""IR code generation from the MiniC AST.

The generated code is deliberately naive, mirroring what clang/rustc emit at
-O0: every variable lives in an ``alloca`` stack slot, parameters are spilled
on entry, and every use goes through a load.  The optimization passes
(mem2reg, sroa, ...) are responsible for cleaning this up — exactly the
pipeline structure whose behaviour the paper studies.
"""

from __future__ import annotations

from typing import Optional

from . import ast_nodes as ast
from .errors import SemanticError
from ..ir import (
    Constant, Function, GlobalVariable, IRBuilder, Module, Value,
    I1, I32, VOID, verify_module,
)
from ..ir.basic_block import BasicBlock
from ..ir.instructions import Alloca

# MiniC builtin functions and the host calls they lower to.
BUILTINS = {
    "print": ("__print", 1),
    "sha256": ("__sha256", 3),
    "keccak256": ("__keccak256", 3),
    "ecdsa_verify": ("__ecdsa_verify", 3),
    "eddsa_verify": ("__eddsa_verify", 3),
    "bigint_modmul": ("__bigint_modmul", 4),
    "read_input": ("__read_input", 1),
}


class _LoopContext:
    """Targets for break/continue inside the innermost enclosing loop."""

    def __init__(self, break_block: BasicBlock, continue_block: BasicBlock):
        self.break_block = break_block
        self.continue_block = continue_block


class _FunctionCodegen:
    """Generates one function's body."""

    def __init__(self, module: Module, function: Function, decl: ast.FunctionDecl,
                 globals_: dict[str, GlobalVariable], signatures: dict[str, ast.FunctionDecl]):
        self.module = module
        self.function = function
        self.decl = decl
        self.globals = globals_
        self.signatures = signatures
        self.builder = IRBuilder()
        self.scalars: dict[str, Alloca] = {}
        self.arrays: dict[str, Alloca] = {}
        self.loop_stack: list[_LoopContext] = []

    # -- entry ---------------------------------------------------------------
    def generate(self) -> None:
        entry = self.function.add_block("entry")
        self.builder.position_at_end(entry)

        # Spill every parameter into a stack slot (clang -O0 behaviour).
        for param, arg in zip(self.decl.params, self.function.arguments):
            slot = self.builder.alloca(I32, 1, name=f"{param.name}.addr")
            self.builder.store(arg, slot)
            self.scalars[param.name] = slot

        for statement in self.decl.body:
            self.gen_statement(statement)

        # Ensure the last block is terminated.
        if self.builder.block is not None and self.builder.block.terminator is None:
            if self.function.return_type is VOID:
                self.builder.ret(None)
            else:
                self.builder.ret(Constant(0))

    # -- statements --------------------------------------------------------------
    def gen_statement(self, stmt: ast.Node) -> None:
        if isinstance(stmt, ast.VarDecl):
            self.gen_var_decl(stmt)
        elif isinstance(stmt, ast.Assign):
            self.gen_assign(stmt)
        elif isinstance(stmt, ast.IfStmt):
            self.gen_if(stmt)
        elif isinstance(stmt, ast.WhileStmt):
            self.gen_while(stmt)
        elif isinstance(stmt, ast.ForStmt):
            self.gen_for(stmt)
        elif isinstance(stmt, ast.ReturnStmt):
            self.gen_return(stmt)
        elif isinstance(stmt, ast.BreakStmt):
            self.gen_break(stmt)
        elif isinstance(stmt, ast.ContinueStmt):
            self.gen_continue(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            if stmt.expr is not None:
                self.gen_expression(stmt.expr)
        else:
            raise SemanticError(f"unsupported statement {type(stmt).__name__}", stmt.line)

    def gen_var_decl(self, stmt: ast.VarDecl) -> None:
        if stmt.name in self.scalars or stmt.name in self.arrays:
            raise SemanticError(f"redeclaration of '{stmt.name}'", stmt.line)
        if stmt.array_size is not None:
            slot = self._entry_alloca(I32, stmt.array_size, stmt.name)
            self.arrays[stmt.name] = slot
            return
        slot = self._entry_alloca(I32, 1, stmt.name)
        self.scalars[stmt.name] = slot
        if stmt.init is not None:
            value = self.gen_expression(stmt.init)
            self.builder.store(value, slot)

    def _entry_alloca(self, type_, count: int, name: str) -> Alloca:
        """Allocas go to the entry block so mem2reg/sroa can reason about them."""
        entry = self.function.entry_block
        alloca = Alloca(type_, count, name)
        index = 0
        for i, inst in enumerate(entry.instructions):
            if isinstance(inst, Alloca):
                index = i + 1
        entry.insert(index, alloca)
        return alloca

    def gen_assign(self, stmt: ast.Assign) -> None:
        value = self.gen_expression(stmt.value)  # type: ignore[arg-type]
        pointer = self.gen_lvalue(stmt.target)  # type: ignore[arg-type]
        self.builder.store(value, pointer)

    def gen_lvalue(self, target: ast.Node) -> Value:
        if isinstance(target, ast.VarExpr):
            slot = self.scalars.get(target.name)
            if slot is None:
                gv = self.globals.get(target.name)
                if gv is not None:
                    return gv
                raise SemanticError(f"assignment to undeclared variable '{target.name}'",
                                    target.line)
            return slot
        if isinstance(target, ast.IndexExpr):
            base = self._array_base(target.name, target.line)
            index = self.gen_expression(target.index)  # type: ignore[arg-type]
            return self.builder.gep(base, index, 4)
        raise SemanticError("invalid assignment target", target.line)

    def _array_base(self, name: str, line: int) -> Value:
        if name in self.arrays:
            return self.arrays[name]
        if name in self.globals:
            return self.globals[name]
        if name in self.scalars:
            # Indexing a scalar pointer parameter (arrays passed by reference).
            return self.builder.load(self.scalars[name], I32, name=f"{name}.ptr")
        raise SemanticError(f"unknown array '{name}'", line)

    def gen_if(self, stmt: ast.IfStmt) -> None:
        condition = self.gen_condition(stmt.condition)  # type: ignore[arg-type]
        then_block = self.function.add_block("if.then")
        merge_block = self.function.add_block("if.end")
        else_block = self.function.add_block("if.else") if stmt.else_body else merge_block
        self.builder.cond_br(condition, then_block, else_block)

        self.builder.position_at_end(then_block)
        for s in stmt.then_body:
            self.gen_statement(s)
        if self.builder.block.terminator is None:
            self.builder.br(merge_block)

        if stmt.else_body:
            self.builder.position_at_end(else_block)
            for s in stmt.else_body:
                self.gen_statement(s)
            if self.builder.block.terminator is None:
                self.builder.br(merge_block)

        self.builder.position_at_end(merge_block)

    def gen_while(self, stmt: ast.WhileStmt) -> None:
        cond_block = self.function.add_block("while.cond")
        body_block = self.function.add_block("while.body")
        exit_block = self.function.add_block("while.end")
        self.builder.br(cond_block)

        self.builder.position_at_end(cond_block)
        condition = self.gen_condition(stmt.condition)  # type: ignore[arg-type]
        self.builder.cond_br(condition, body_block, exit_block)

        self.loop_stack.append(_LoopContext(exit_block, cond_block))
        self.builder.position_at_end(body_block)
        for s in stmt.body:
            self.gen_statement(s)
        if self.builder.block.terminator is None:
            self.builder.br(cond_block)
        self.loop_stack.pop()

        self.builder.position_at_end(exit_block)

    def gen_for(self, stmt: ast.ForStmt) -> None:
        if stmt.init is not None:
            self.gen_statement(stmt.init)
        cond_block = self.function.add_block("for.cond")
        body_block = self.function.add_block("for.body")
        step_block = self.function.add_block("for.step")
        exit_block = self.function.add_block("for.end")
        self.builder.br(cond_block)

        self.builder.position_at_end(cond_block)
        if stmt.condition is not None:
            condition = self.gen_condition(stmt.condition)
            self.builder.cond_br(condition, body_block, exit_block)
        else:
            self.builder.br(body_block)

        self.loop_stack.append(_LoopContext(exit_block, step_block))
        self.builder.position_at_end(body_block)
        for s in stmt.body:
            self.gen_statement(s)
        if self.builder.block.terminator is None:
            self.builder.br(step_block)
        self.loop_stack.pop()

        self.builder.position_at_end(step_block)
        if stmt.step is not None:
            self.gen_statement(stmt.step)
        self.builder.br(cond_block)

        self.builder.position_at_end(exit_block)

    def gen_return(self, stmt: ast.ReturnStmt) -> None:
        if stmt.value is not None:
            value = self.gen_expression(stmt.value)
            self.builder.ret(value)
        elif self.function.return_type is VOID:
            self.builder.ret(None)
        else:
            self.builder.ret(Constant(0))
        # Code after a return is unreachable but must stay well-formed.
        dead = self.function.add_block("after.ret")
        self.builder.position_at_end(dead)

    def gen_break(self, stmt: ast.BreakStmt) -> None:
        if not self.loop_stack:
            raise SemanticError("'break' outside of a loop", stmt.line)
        self.builder.br(self.loop_stack[-1].break_block)
        dead = self.function.add_block("after.break")
        self.builder.position_at_end(dead)

    def gen_continue(self, stmt: ast.ContinueStmt) -> None:
        if not self.loop_stack:
            raise SemanticError("'continue' outside of a loop", stmt.line)
        self.builder.br(self.loop_stack[-1].continue_block)
        dead = self.function.add_block("after.continue")
        self.builder.position_at_end(dead)

    # -- expressions --------------------------------------------------------------
    def gen_condition(self, expr: ast.Node) -> Value:
        """Generate an i1 condition from an arbitrary integer expression."""
        value = self.gen_expression(expr)
        if value.type is I1:
            return value
        return self.builder.icmp("ne", value, Constant(0), name="tobool")

    def gen_expression(self, expr: ast.Node) -> Value:
        if isinstance(expr, ast.NumberExpr):
            return Constant(expr.value)
        if isinstance(expr, ast.VarExpr):
            return self.gen_var_read(expr)
        if isinstance(expr, ast.IndexExpr):
            base = self._array_base(expr.name, expr.line)
            index = self.gen_expression(expr.index)  # type: ignore[arg-type]
            pointer = self.builder.gep(base, index, 4)
            return self.builder.load(pointer, I32)
        if isinstance(expr, ast.UnaryExpr):
            return self.gen_unary(expr)
        if isinstance(expr, ast.BinaryExpr):
            return self.gen_binary(expr)
        if isinstance(expr, ast.CallExpr):
            return self.gen_call(expr)
        raise SemanticError(f"unsupported expression {type(expr).__name__}", expr.line)

    def gen_var_read(self, expr: ast.VarExpr) -> Value:
        if expr.name in self.scalars:
            return self.builder.load(self.scalars[expr.name], I32, name=expr.name)
        if expr.name in self.arrays:
            return self.arrays[expr.name]
        if expr.name in self.globals:
            return self.globals[expr.name]
        raise SemanticError(f"use of undeclared variable '{expr.name}'", expr.line)

    def gen_unary(self, expr: ast.UnaryExpr) -> Value:
        operand = self.gen_expression(expr.operand)  # type: ignore[arg-type]
        operand = self._as_i32(operand)
        if expr.op == "-":
            return self.builder.sub(Constant(0), operand, name="neg")
        if expr.op == "~":
            return self.builder.xor(operand, Constant(-1), name="not")
        if expr.op == "!":
            cmp = self.builder.icmp("eq", operand, Constant(0), name="lnot")
            return self.builder.cast("zext", cmp, I32, name="lnot.ext")
        raise SemanticError(f"unknown unary operator {expr.op}", expr.line)

    _CMP_PREDICATES = {"==": "eq", "!=": "ne", "<": "slt", "<=": "sle",
                       ">": "sgt", ">=": "sge"}
    _ARITH_OPCODES = {"+": "add", "-": "sub", "*": "mul", "/": "sdiv", "%": "srem",
                      "&": "and", "|": "or", "^": "xor", "<<": "shl", ">>": "ashr", ">>>": "lshr"}

    def gen_binary(self, expr: ast.BinaryExpr) -> Value:
        if expr.op in ("&&", "||"):
            return self.gen_logical(expr)
        lhs = self._as_i32(self.gen_expression(expr.lhs))  # type: ignore[arg-type]
        rhs = self._as_i32(self.gen_expression(expr.rhs))  # type: ignore[arg-type]
        if expr.op in self._CMP_PREDICATES:
            cmp = self.builder.icmp(self._CMP_PREDICATES[expr.op], lhs, rhs)
            return self.builder.cast("zext", cmp, I32, name="cmp.ext")
        if expr.op in self._ARITH_OPCODES:
            return self.builder.binop(self._ARITH_OPCODES[expr.op], lhs, rhs)
        raise SemanticError(f"unknown binary operator {expr.op}", expr.line)

    def gen_logical(self, expr: ast.BinaryExpr) -> Value:
        """Short-circuit && and || via a stack temporary (pre-SSA form)."""
        result = self._entry_alloca(I32, 1, "logtmp")
        lhs = self.gen_condition(expr.lhs)  # type: ignore[arg-type]
        rhs_block = self.function.add_block("log.rhs")
        merge_block = self.function.add_block("log.end")

        if expr.op == "&&":
            self.builder.store(Constant(0), result)
            self.builder.cond_br(lhs, rhs_block, merge_block)
        else:  # "||"
            self.builder.store(Constant(1), result)
            self.builder.cond_br(lhs, merge_block, rhs_block)

        self.builder.position_at_end(rhs_block)
        rhs = self.gen_condition(expr.rhs)  # type: ignore[arg-type]
        rhs_i32 = self.builder.cast("zext", rhs, I32, name="log.ext")
        self.builder.store(rhs_i32, result)
        self.builder.br(merge_block)

        self.builder.position_at_end(merge_block)
        return self.builder.load(result, I32, name="log.val")

    def gen_call(self, expr: ast.CallExpr) -> Value:
        args = [self._as_i32(self.gen_expression(a)) for a in expr.args]
        if expr.callee in BUILTINS:
            host_name, arity = BUILTINS[expr.callee]
            if len(args) != arity:
                raise SemanticError(
                    f"builtin '{expr.callee}' expects {arity} arguments, got {len(args)}",
                    expr.line)
            return self.builder.call(host_name, args, I32)
        decl = self.signatures.get(expr.callee)
        if decl is None:
            raise SemanticError(f"call to undefined function '{expr.callee}'", expr.line)
        if len(args) != len(decl.params):
            raise SemanticError(
                f"'{expr.callee}' expects {len(decl.params)} arguments, got {len(args)}",
                expr.line)
        return_type = I32 if decl.returns_value else VOID
        return self.builder.call(expr.callee, args, return_type)

    def _as_i32(self, value: Value) -> Value:
        if value.type is I1:
            return self.builder.cast("zext", value, I32, name="bool.ext")
        return value


def compile_source(source: str, module_name: str = "guest", verify: bool = True) -> Module:
    """Compile MiniC source text into an IR module."""
    from .parser import parse

    program = parse(source)
    module = Module(module_name)

    globals_: dict[str, GlobalVariable] = {}
    for decl in program.globals:
        globals_[decl.name] = module.add_global(decl.name, I32, decl.count, decl.initializer)

    signatures = {f.name: f for f in program.functions}
    functions: dict[str, Function] = {}
    for decl in program.functions:
        if decl.name in functions:
            raise SemanticError(f"duplicate function '{decl.name}'", decl.line)
        return_type = I32 if decl.returns_value else VOID
        function = module.create_function(decl.name, return_type,
                                          [I32] * len(decl.params),
                                          [p.name for p in decl.params])
        if decl.inline_always:
            function.attributes.add("alwaysinline")
        functions[decl.name] = function

    for decl in program.functions:
        _FunctionCodegen(module, functions[decl.name], decl, globals_, signatures).generate()

    if verify:
        verify_module(module)
    return module
