"""Diagnostics for the MiniC frontend."""

from __future__ import annotations


class FrontendError(Exception):
    """Base class of all frontend diagnostics."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.message = message
        self.line = line
        self.column = column
        location = f" (line {line}, column {column})" if line else ""
        super().__init__(f"{message}{location}")


class LexerError(FrontendError):
    """Invalid character or malformed token."""


class ParseError(FrontendError):
    """Syntax error."""


class SemanticError(FrontendError):
    """Use of undeclared names, arity mismatches, invalid assignments, ..."""
