"""MiniC: the small C-like guest language used to write the benchmark programs.

The public entry point is :func:`compile_source`, which turns MiniC source
text into an IR :class:`~repro.ir.Module` ready for the optimization pipeline
and the RISC-V backend.
"""

from .codegen import compile_source, BUILTINS
from .errors import FrontendError, LexerError, ParseError, SemanticError
from .lexer import Token, tokenize
from .parser import Parser, parse

__all__ = [
    "compile_source", "BUILTINS",
    "FrontendError", "LexerError", "ParseError", "SemanticError",
    "Token", "tokenize", "Parser", "parse",
]
