"""Smaller passes: sink, mldst-motion, attributor, speculative-execution and
bounds-checking."""

from __future__ import annotations

from typing import Optional

from ..ir import (
    Alloca, BasicBlock, BinaryOp, Branch, Call, Cast, CondBranch, Constant,
    Function, GEP, GlobalVariable, ICmp, Instruction, Load,
    Module, Phi, Ret, Select, Store, Unreachable, I1, I32,
)
from .analysis import PRESERVE_ALL, AnalysisManager
from .pass_manager import FunctionPass, ModulePass, register_pass
from .utils import constant_value, underlying_object


@register_pass
class Sink(FunctionPass):
    """Sink instructions closer to their (unique) use block.

    Moving a computation into the block that uses it avoids executing it on
    paths that do not need the value.
    """

    name = "sink"
    module_independent = True
    description = "Move instructions into the successor blocks that use them"
    preserves = PRESERVE_ALL  # moves non-terminators between existing blocks

    def run_on_function(self, function: Function, module: Module) -> bool:
        changed = False
        domtree = self.analysis.domtree(function)
        for block in list(function.blocks):
            for inst in reversed(list(block.instructions)):
                if inst.is_terminator or isinstance(inst, (Phi, Alloca)):
                    continue
                if not inst.is_safe_to_speculate():
                    continue
                user_blocks = {u.parent for u in inst.users
                               if isinstance(u, Instruction) and u.parent is not None}
                if len(user_blocks) != 1:
                    continue
                target = user_blocks.pop()
                if target is block or target is None:
                    continue
                if any(isinstance(u, Phi) for u in inst.users):
                    continue
                # Only sink into a block dominated by this one (never across a
                # back edge into a loop, which would re-execute the instruction).
                if not domtree.strictly_dominates(block, target):
                    continue
                block.remove_instruction(inst)
                target.insert(target.first_non_phi_index(), inst)
                inst.parent = target
                changed = True
        return changed


@register_pass
class MergedLoadStoreMotion(FunctionPass):
    """mldst-motion: hoist identical loads from both arms of a diamond into the
    head block (and remove the duplicate)."""

    name = "mldst-motion"
    module_independent = True
    description = "Merge identical memory accesses from both sides of a diamond"
    preserves = PRESERVE_ALL  # moves/erases non-terminators only

    def run_on_function(self, function: Function, module: Module) -> bool:
        changed = False
        for head in function.blocks:
            term = head.terminator
            if not isinstance(term, CondBranch):
                continue
            left, right = term.true_target, term.false_target
            if left is right:
                continue
            if len(left.predecessors) != 1 or len(right.predecessors) != 1:
                continue
            left_loads = [i for i in left.instructions if isinstance(i, Load)]
            right_loads = [i for i in right.instructions if isinstance(i, Load)]
            for lload in left_loads:
                if lload.parent is None:
                    continue
                # A matching load on the other side from the same pointer, with no
                # stores/calls before either load in its block.
                match = next((r for r in right_loads
                              if r.parent is not None and r.pointer is lload.pointer), None)
                if match is None:
                    continue
                if _memory_write_before(left, lload) or _memory_write_before(right, match):
                    continue
                left.remove_instruction(lload)
                head.insert_before_terminator(lload)
                inst_parent_fix(lload, head)
                match.replace_all_uses_with(lload)
                match.erase()
                changed = True
        return changed


def _memory_write_before(block: BasicBlock, until: Instruction) -> bool:
    for inst in block.instructions:
        if inst is until:
            return False
        if isinstance(inst, (Store, Call)):
            return True
    return False


def inst_parent_fix(inst: Instruction, block: BasicBlock) -> None:
    inst.parent = block


@register_pass
class Attributor(ModulePass):
    """Infer function attributes (readnone, norecurse, willreturn) and exploit
    them: calls to pure functions whose results are unused are deleted."""

    name = "attributor"
    description = "Infer and exploit function attributes"
    preserves = PRESERVE_ALL  # deletes unused calls and adds attributes only

    def run(self, module: Module) -> bool:
        changed = False
        # 1. Infer attributes.
        for function in module.defined_functions():
            accesses_memory = False
            calls_others = False
            recursive = False
            for inst in function.instructions():
                if isinstance(inst, (Load, Store)):
                    accesses_memory = True
                elif isinstance(inst, Call):
                    if inst.callee == function.name:
                        recursive = True
                    else:
                        calls_others = True
            if not accesses_memory and not calls_others and not recursive:
                if "readnone" not in function.attributes:
                    function.attributes.add("readnone")
                    changed = True
            if not recursive and "norecurse" not in function.attributes:
                function.attributes.add("norecurse")
                changed = True

        # 2. Delete unused calls to readnone functions (they cannot have effects).
        for function in module.defined_functions():
            for block in function.blocks:
                for inst in list(block.instructions):
                    if not isinstance(inst, Call) or inst.users:
                        continue
                    callee = module.get_function(inst.callee)
                    if callee is not None and "readnone" in callee.attributes \
                            and not _may_diverge(callee, self.analysis):
                        inst.erase()
                        changed = True
        return changed


def _may_diverge(function: Function,
                 analysis: Optional[AnalysisManager] = None) -> bool:
    """Conservatively true if the function contains any loop (might not return)."""
    from ..ir import LoopInfo

    if analysis is not None:
        return bool(analysis.loop_info(function).loops())
    return bool(LoopInfo(function).loops())


@register_pass
class SpeculativeExecution(FunctionPass):
    """Hoist cheap side-effect-free instructions above conditional branches.

    On out-of-order CPUs this hides latency behind the branch; on zkVMs it
    only ever adds executed instructions (the hoisted work runs even when its
    branch arm is not taken), which is why the zkVM-aware profile disables it.
    """

    name = "speculative-execution"
    module_independent = True
    description = "Hoist side-effect-free instructions above branches"
    preserves = PRESERVE_ALL  # moves non-terminators between existing blocks

    MAX_SPECULATED = 4

    def run_on_function(self, function: Function, module: Module) -> bool:
        changed = False
        for head in function.blocks:
            term = head.terminator
            if not isinstance(term, CondBranch):
                continue
            for target in (term.true_target, term.false_target):
                if len(target.predecessors) != 1:
                    continue
                hoisted = 0
                for inst in list(target.instructions):
                    if hoisted >= self.MAX_SPECULATED:
                        break
                    if isinstance(inst, Phi) or inst.is_terminator:
                        continue
                    if not inst.is_safe_to_speculate():
                        break
                    if any(isinstance(op, Instruction) and op.parent is target
                           for op in inst.operands):
                        break
                    target.remove_instruction(inst)
                    head.insert_before_terminator(inst)
                    inst.parent = head
                    hoisted += 1
                    changed = True
        return changed


@register_pass
class BoundsChecking(FunctionPass):
    """Insert bounds checks before indexed accesses to objects of known size
    (a sanitizer-style pass; it always adds executed instructions)."""

    name = "bounds-checking"
    module_independent = True
    description = "Insert array bounds checks before indexed memory accesses"

    def run_on_function(self, function: Function, module: Module) -> bool:
        changed = False
        trap_block: BasicBlock | None = None
        guarded: set[int] = set()
        worklist = list(function.blocks)
        while worklist:
            block = worklist.pop(0)
            for inst in list(block.instructions):
                if inst.parent is not block or not isinstance(inst, GEP):
                    continue
                if id(inst) in guarded:
                    continue
                base = underlying_object(inst.base)
                if isinstance(base, (Alloca, GlobalVariable)):
                    count = base.count
                else:
                    continue
                if constant_value(inst.index) is not None:
                    continue  # statically known indices are not instrumented
                if trap_block is None:
                    trap_block = function.add_block("bounds.trap")
                    trap_block.append(Unreachable())
                # Split the block before the GEP and guard it.
                index = block.instructions.index(inst)
                cont = function.add_block(f"{block.name}.bounds", after=block)
                for moved in list(block.instructions[index:]):
                    block.remove_instruction(moved)
                    cont.append(moved)
                for succ in cont.successors:
                    for phi in succ.phis():
                        phi.replace_incoming_block(block, cont)
                check = ICmp("ult", inst.index, Constant(count), "bounds.ok")
                block.append(check)
                block.append(CondBranch(check, cont, trap_block))
                changed = True
                guarded.add(id(inst))
                # The rest of the original block now lives in `cont`.
                worklist.insert(0, cont)
                break
        return changed
