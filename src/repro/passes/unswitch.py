"""Loop unswitching passes: simple-loop-unswitch and loop-versioning-licm.

simple-loop-unswitch hoists a loop-invariant condition out of the loop by
duplicating the loop: one copy specialized for the condition being true, one
for false.  loop-versioning-licm duplicates the loop behind a runtime guard
and then runs licm on the versioned copy (our guard is trivially true because
the conservative alias analysis cannot prove independence — the pass still
pays the guard and code-size cost, which matches its small/negative effect in
the paper).
"""

from __future__ import annotations

from ..ir import (
    BasicBlock, Branch, CondBranch, Constant, Function, Instruction, Loop,
    Module, Phi, remove_unreachable_blocks, I1,
)
from ..ir.cloning import clone_instruction
from .pass_manager import FunctionPass, register_pass
from .loop_utils import ensure_preheader, loop_is_invariant
from .loop_passes import LICM


def clone_loop(loop: Loop, function: Function, suffix: str):
    """Clone the blocks of ``loop``; returns (block_map, value_map).

    Only safe when the loop has a single preheader and its exit blocks have no
    phis (callers must check).  The cloned loop is *not* yet reachable.
    """
    value_map: dict = {}
    block_map: dict = {}
    # Defs must be cloned before their cross-block uses (see Loop.body_in_rpo).
    originals = loop.body_in_rpo()
    for block in originals:
        clone = BasicBlock(function.unique_name(f"{block.name}.{suffix}"), function)
        block_map[block] = clone
        function.blocks.append(clone)
    function.invalidate_cfg()
    phi_fixups = []
    for block in originals:
        clone = block_map[block]
        for inst in block.instructions:
            if isinstance(inst, Phi):
                new_phi = Phi(inst.type, inst.name)
                clone.append(new_phi)
                value_map[inst] = new_phi
                phi_fixups.append((inst, new_phi))
            else:
                cloned = clone_instruction(inst, value_map, block_map)
                clone.append(cloned)
                if inst.has_result:
                    value_map[inst] = cloned
    for old_phi, new_phi in phi_fixups:
        for value, pred in old_phi.incoming:
            new_phi.add_incoming(value_map.get(value, value), block_map.get(pred, pred))
    return block_map, value_map


def _exits_have_no_phis(loop: Loop) -> bool:
    return all(not e.phis() for e in loop.exit_blocks())


def _has_live_outs(loop: Loop) -> bool:
    """True if a value defined inside the loop is used outside it.

    Versioning duplicates the loop body, after which an in-loop definition no
    longer dominates uses past the exit (control may flow through the clone).
    The seed versioned such loops anyway and emitted use-before-def IR; both
    unswitching passes now bail out instead — consistent with their
    "memory-form loops only" intent, where values leave the loop via stores.
    """
    for block in loop.blocks:
        for inst in block.instructions:
            for user in inst.users:
                if isinstance(user, Instruction) and user.parent is not None \
                        and user.parent not in loop.blocks:
                    return True
    return False


@register_pass
class SimpleLoopUnswitch(FunctionPass):
    """Hoist loop-invariant branches out of loops by versioning the loop."""

    name = "simple-loop-unswitch"
    module_independent = True
    description = "Duplicate loops to specialize loop-invariant conditions"

    def run_on_function(self, function: Function, module: Module) -> bool:
        changed = False
        loop_info = self.analysis.loop_info(function)
        for loop in loop_info.innermost_loops():
            blocks_before = len(function.blocks)
            preheader = ensure_preheader(loop, function)
            changed |= len(function.blocks) != blocks_before
            if preheader is None or not _exits_have_no_phis(loop) \
                    or _has_live_outs(loop):
                continue
            candidate = self._invariant_branch(loop)
            if candidate is None:
                continue
            branch_block, term = candidate
            condition = term.condition

            block_map, _ = clone_loop(loop, function, "unswitch")
            # Specialize: original copy assumes the condition is true, the clone
            # assumes it is false.  Dropping one side of the conditional branch
            # removes a CFG edge, so the no-longer-reached successor must also
            # forget its phi entry for the branch block — a stale entry is later
            # folded to the wrong value by simplifycfg's block merging.
            term.erase()
            branch_block.append(Branch(term.true_target))
            if term.false_target is not term.true_target:
                for phi in term.false_target.phis():
                    phi.remove_incoming(branch_block)
            cloned_block = block_map[branch_block]
            cloned_term = cloned_block.terminator
            assert isinstance(cloned_term, CondBranch)
            false_target = cloned_term.false_target
            cloned_term.erase()
            cloned_block.append(Branch(false_target))
            if cloned_term.true_target is not false_target:
                for phi in cloned_term.true_target.phis():
                    phi.remove_incoming(cloned_block)

            # The preheader now selects which version to run.
            preheader_term = preheader.terminator
            header_clone = block_map[loop.header]
            for phi in loop.header.phis():
                value = phi.incoming_for_block(preheader)
                clone_phi = None
                for candidate_phi in header_clone.phis():
                    if candidate_phi.name == phi.name:
                        clone_phi = candidate_phi
                        break
                if clone_phi is not None and value is not None:
                    clone_phi.replace_incoming_block(preheader, preheader)
            preheader_term.erase()
            preheader.append(CondBranch(condition, loop.header, header_clone))
            changed = True
            # Only unswitch one condition per loop per run (as LLVM does by default).
        if changed:
            remove_unreachable_blocks(function)
        return changed

    @staticmethod
    def _invariant_branch(loop: Loop):
        for block in loop.blocks:
            term = block.terminator
            if not isinstance(term, CondBranch):
                continue
            if block is loop.header:
                continue  # the header's branch is the loop exit test
            if all(s in loop.blocks for s in term.successors) \
                    and loop_is_invariant(term.condition, loop) \
                    and not isinstance(term.condition, Constant):
                return block, term
        return None


@register_pass
class LoopVersioningLICM(FunctionPass):
    """Version loops behind a (conservative) runtime check, then run licm."""

    name = "loop-versioning-licm"
    module_independent = True
    description = "Loop versioning for LICM with a runtime memory check"

    def run_on_function(self, function: Function, module: Module) -> bool:
        changed = False
        loop_info = self.analysis.loop_info(function)
        for loop in loop_info.innermost_loops():
            blocks_before = len(function.blocks)
            preheader = ensure_preheader(loop, function)
            changed |= len(function.blocks) != blocks_before
            if preheader is None or not _exits_have_no_phis(loop) \
                    or _has_live_outs(loop):
                continue
            if loop.header.phis():
                continue  # keep the duplication simple: memory-form loops only
            block_map, _ = clone_loop(loop, function, "versioned")
            # Guard: our alias analysis cannot prove independence, so the check
            # statically selects the original loop; the versioned copy remains
            # as cold code (code-size cost without runtime benefit).
            preheader_term = preheader.terminator
            preheader_term.erase()
            preheader.append(CondBranch(Constant(1, I1), loop.header, block_map[loop.header]))
            changed = True
        if changed:
            # Run licm over the whole function (it will canonicalize again),
            # sharing this pipeline's analysis manager.
            licm = LICM(self.config)
            licm.analysis = self.analysis
            changed |= licm.run_on_function(function, module)
            remove_unreachable_blocks(function)
        return changed
