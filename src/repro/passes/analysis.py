"""The per-function analysis manager of the pass pipeline.

The seed pass manager rebuilt :class:`~repro.ir.dominators.DominatorTree`,
:class:`~repro.ir.loops.LoopInfo` and the other CFG-derived analyses from
scratch inside every pass, on every ``run_on_function`` call — the same
compile-time problem LLVM's AnalysisManager solves.  This module provides the
equivalent: passes *request* analyses from an :class:`AnalysisManager`, which
computes them lazily, caches them per function, and drops them when a pass
reports that it modified the function.

Invalidation is two-tiered:

* **Explicit (preserves-sets).**  Every :class:`~repro.passes.pass_manager.Pass`
  declares ``preserves: frozenset[str]`` — the analyses that remain valid even
  when the pass changed the function.  After a pass reports a change, the
  manager drops exactly the non-preserved analyses of the functions the pass
  touched (function passes invalidate per function as they go; module passes
  such as ``inline`` report the precise set of functions they modified).

* **CFG-version safety net.**  Every cached analysis records the owning
  function's CFG version (:attr:`repro.ir.function.Function.cfg_version`),
  which every block-graph mutation bumps.  A request that finds a cached
  result from an older version recomputes instead of returning it.  This
  makes a wrong preserves declaration a performance bug rather than a silent
  miscompile — as long as the mutation went through the IR's mutation APIs.

``verify=True`` (debug mode) additionally recomputes every analysis on each
cache hit and cross-checks it against the cached result, catching mutations
that bypassed the IR mutation APIs entirely; see :meth:`verify_analyses`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from ..ir import (
    DominatorTree, Function, LoopInfo, dominance_frontiers, reachable_blocks,
)

# Analysis names.  Passes refer to these in their ``preserves`` sets.
DOMTREE = "domtree"
LOOPS = "loops"
FRONTIERS = "frontiers"
REACHABLE = "reachable"

ALL_ANALYSES: tuple[str, ...] = (DOMTREE, LOOPS, FRONTIERS, REACHABLE)

#: Declared by passes that never change the block graph (they may still add,
#: move, replace or erase non-terminator instructions and phis — none of the
#: managed analyses read those).
PRESERVE_ALL: frozenset[str] = frozenset(ALL_ANALYSES)

#: Declared by passes that may change the block graph in any way.
PRESERVE_NONE: frozenset[str] = frozenset()

#: An analysis is only retained if every analysis it was derived from is
#: retained too (``LoopInfo`` and the dominance frontiers embed the dominator
#: tree they were built from).
_DEPENDENCIES: dict[str, frozenset[str]] = {
    DOMTREE: frozenset(),
    LOOPS: frozenset({DOMTREE}),
    FRONTIERS: frozenset({DOMTREE}),
    REACHABLE: frozenset(),
}


class StaleAnalysisError(RuntimeError):
    """A cached analysis no longer matches the IR it claims to describe.

    Raised only by the debug-mode cross-check (``verify=True`` or an explicit
    :meth:`AnalysisManager.verify_analyses` call); in production mode the
    CFG-version safety net silently recomputes drifted analyses instead.
    """


@dataclass
class AnalysisStats:
    """Counters describing where analysis requests were answered from."""

    #: Requests answered from the cache.
    hits: int = 0
    #: Requests that ran the underlying analysis.
    computed: int = 0
    #: Cache entries dropped by explicit (preserves-driven) invalidation.
    invalidated: int = 0
    #: Cache entries dropped because the function's CFG version moved on
    #: without an explicit invalidation (the safety net firing).
    drifted: int = 0
    #: Function-pass invocations skipped because the pass already proved
    #: itself a no-op on the identical IR epoch.
    skipped: int = 0

    def snapshot(self) -> "AnalysisStats":
        return AnalysisStats(self.hits, self.computed, self.invalidated,
                             self.drifted, self.skipped)

    def delta(self, since: "AnalysisStats") -> "AnalysisStats":
        return AnalysisStats(self.hits - since.hits,
                             self.computed - since.computed,
                             self.invalidated - since.invalidated,
                             self.drifted - since.drifted,
                             self.skipped - since.skipped)

    def as_dict(self) -> dict:
        return {"hits": self.hits, "computed": self.computed,
                "invalidated": self.invalidated, "drifted": self.drifted,
                "skipped": self.skipped}


class AnalysisManager:
    """Lazily computes and caches per-function analyses with invalidation.

    Parameters
    ----------
    enabled:
        ``False`` turns the manager into a pure compute service: every request
        runs the analysis fresh and nothing is stored.  This is the
        ``--no-analysis-cache`` escape hatch, reproducing the seed pass
        manager's recompute-everything behaviour for differential testing.
    verify:
        Debug mode: recompute each analysis on every cache hit and raise
        :class:`StaleAnalysisError` if the cached result no longer matches.
    seed_baseline:
        Benchmarking mode (implies ``enabled=False``): serve every request
        from the preserved seed implementations in
        :mod:`repro.passes.seed_analysis`, reproducing the seed pass
        manager's analysis cost model exactly.  Not byte-deterministic (the
        seed's loops iterate address-ordered sets) — never use it as a
        differential oracle.
    """

    def __init__(self, enabled: bool = True, verify: bool = False,
                 seed_baseline: bool = False):
        self.enabled = enabled and not seed_baseline
        self.verify = verify
        self.seed_baseline = seed_baseline
        self.stats = AnalysisStats()
        # function -> analysis name -> (cfg_version at computation, result)
        self._cache: dict[Function, dict[str, tuple[int, object]]] = {}
        # (pass identity, function) -> IR epoch at which the pass was a no-op
        self._noop: dict[tuple, int] = {}

    # -- typed request API -------------------------------------------------
    def domtree(self, function: Function) -> DominatorTree:
        return self.get(DOMTREE, function)

    def loop_info(self, function: Function) -> LoopInfo:
        return self.get(LOOPS, function)

    def frontiers(self, function: Function):
        return self.get(FRONTIERS, function)

    def reachable(self, function: Function):
        return self.get(REACHABLE, function)

    # -- core ---------------------------------------------------------------
    def _compute(self, name: str, function: Function):
        if self.seed_baseline:
            return self._compute_seed(name, function)
        if name == DOMTREE:
            return DominatorTree(function)
        if name == LOOPS:
            # Share the managed dominator tree; when disabled this computes a
            # fresh one, exactly like the seed's bare ``LoopInfo(function)``.
            return LoopInfo(function, self.get(DOMTREE, function))
        if name == FRONTIERS:
            return dominance_frontiers(function, self.get(DOMTREE, function))
        if name == REACHABLE:
            return reachable_blocks(function)
        raise KeyError(f"unknown analysis: {name}")

    def _compute_seed(self, name: str, function: Function):
        """Serve a request from the preserved seed implementations."""
        from . import seed_analysis as seed

        if name == DOMTREE:
            return seed.SeedDominatorTree(function)
        if name == LOOPS:
            return seed.SeedLoopInfo(function)
        if name == FRONTIERS:
            return seed.seed_dominance_frontiers(function)
        if name == REACHABLE:
            return seed.seed_reachable_blocks(function)
        raise KeyError(f"unknown analysis: {name}")

    def get(self, name: str, function: Function):
        """The requested analysis, computed or served from the cache."""
        if not self.enabled:
            self.stats.computed += 1
            return self._compute(name, function)
        entry = self._cache.setdefault(function, {})
        version = function.cfg_version
        cached = entry.get(name)
        if cached is not None:
            cached_version, result = cached
            if cached_version == version:
                if self.verify:
                    self._cross_check(name, function, result)
                self.stats.hits += 1
                return result
            # The CFG moved on without an explicit invalidation: safety net.
            del entry[name]
            self.stats.drifted += 1
        result = self._compute(name, function)
        self.stats.computed += 1
        entry[name] = (version, result)
        return result

    # -- invalidation -------------------------------------------------------
    def invalidate(self, function: Function,
                   preserved: frozenset[str] = PRESERVE_NONE) -> int:
        """Drop this function's analyses except the preserved ones.

        An analysis is retained only if it *and* everything it was derived
        from is preserved.  Returns the number of entries dropped.
        """
        entry = self._cache.get(function)
        if not entry:
            return 0
        dropped = 0
        for name in list(entry):
            keep = name in preserved and _DEPENDENCIES[name] <= preserved
            if not keep:
                del entry[name]
                dropped += 1
        self.stats.invalidated += dropped
        return dropped

    def invalidate_functions(self, functions: Iterable[Function],
                             preserved: frozenset[str] = PRESERVE_NONE) -> int:
        """Precise module-pass invalidation: only the touched functions."""
        return sum(self.invalidate(function, preserved) for function in functions)

    def clear(self) -> None:
        """Drop every cached analysis (new module, new pipeline run)."""
        self._cache.clear()
        self._noop.clear()

    # -- no-op pass-result caching ----------------------------------------
    def noop_epoch(self, key: tuple) -> Optional[int]:
        """The IR epoch at which this (pass, function) proved a no-op."""
        return self._noop.get(key)

    def record_noop(self, key: tuple, epoch: int) -> None:
        self._noop[key] = epoch

    # -- debug cross-check --------------------------------------------------
    def verify_analyses(self, function: Optional[Function] = None) -> None:
        """Recompute every cached analysis and compare with the cache.

        Raises :class:`StaleAnalysisError` on any mismatch — including
        mutations that bypassed the IR mutation APIs and therefore did not
        bump the CFG version.  With no argument, checks every cached function.
        """
        functions = [function] if function is not None else list(self._cache)
        for checked in functions:
            for name, (_, result) in list(self._cache.get(checked, {}).items()):
                self._cross_check(name, checked, result)

    def _cross_check(self, name: str, function: Function, cached) -> None:
        fresh = self._compute(name, function)
        if not _equivalent(name, cached, fresh):
            raise StaleAnalysisError(
                f"cached '{name}' of function '{function.name}' does not match "
                f"a fresh recomputation; a pass mutated the CFG without "
                f"invalidating (or bypassed the IR mutation APIs)")


def _equivalent(name: str, cached, fresh) -> bool:
    """Structural equality of two analysis results of the same kind."""
    if name == DOMTREE:
        return (cached.rpo == fresh.rpo
                and {id(b): id(d) for b, d in cached.idom.items()}
                == {id(b): id(d) for b, d in fresh.idom.items()})
    if name == LOOPS:
        def shape(info: LoopInfo):
            return {
                id(loop.header): (frozenset(id(b) for b in loop.blocks),
                                  frozenset(id(l) for l in loop.latches),
                                  id(loop.parent.header) if loop.parent else None)
                for loop in info.loops()
            }
        return shape(cached) == shape(fresh)
    if name == FRONTIERS:
        def shape(frontiers):
            return {id(b): frozenset(id(f) for f in fs)
                    for b, fs in frontiers.items()}
        return shape(cached) == shape(fresh)
    if name == REACHABLE:
        return cached == fresh
    return False


__all__ = [
    "ALL_ANALYSES", "AnalysisManager", "AnalysisStats", "DOMTREE", "FRONTIERS",
    "LOOPS", "PRESERVE_ALL", "PRESERVE_NONE", "REACHABLE", "StaleAnalysisError",
]
