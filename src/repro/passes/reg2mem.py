"""reg2mem: demote SSA registers (and phi nodes) back into stack slots.

This is the inverse of mem2reg.  LLVM ships it mostly as a utility pass; the
paper includes it because it is a clean way to observe the cost of extra
memory traffic on each platform (cheap on x86 thanks to the store buffer and
L1 hits, expensive on zkVMs because of paging).
"""

from __future__ import annotations

from ..ir import (
    Alloca, BasicBlock, Function, Instruction, Load, Module, Phi, Store, I32,
)
from .analysis import PRESERVE_ALL
from .pass_manager import FunctionPass, register_pass


def _needs_demotion(inst: Instruction) -> bool:
    """Demote values that are used outside their defining block (or by phis)."""
    if not inst.has_result or isinstance(inst, (Alloca, Phi)):
        return False
    for user in inst.users:
        if isinstance(user, Phi) or (isinstance(user, Instruction) and user.parent is not inst.parent):
            return True
    return False


@register_pass
class Reg2Mem(FunctionPass):
    """Demote registers to memory (the inverse of mem2reg)."""

    name = "reg2mem"
    module_independent = True
    description = "Demote cross-block SSA values and phi nodes into stack slots"
    preserves = PRESERVE_ALL  # inserts allocas/loads/stores; CFG untouched

    def run_on_function(self, function: Function, module: Module) -> bool:
        changed = False
        entry = function.entry_block

        # 1. Demote phi nodes: store the incoming value at the end of each
        #    predecessor, load at the start of the phi's block.
        for block in list(function.blocks):
            for phi in list(block.phis()):
                slot = Alloca(I32, 1, f"{phi.name}.slot")
                entry.insert(0, slot)
                for value, pred in phi.incoming:
                    pred.insert_before_terminator(Store(value, slot))
                load = Load(slot, I32, f"{phi.name}.reload")
                block.insert(block.first_non_phi_index(), load)
                phi.replace_all_uses_with(load)
                phi.erase()
                changed = True

        # 2. Demote values that live across basic blocks.
        for block in list(function.blocks):
            for inst in list(block.instructions):
                if not _needs_demotion(inst):
                    continue
                slot = Alloca(I32, 1, f"{inst.name}.slot")
                entry.insert(0, slot)
                # Store right after the definition.
                index = block.instructions.index(inst) + 1
                block.insert(index, Store(inst, slot))
                # Reload before every out-of-block user.
                for user in list(inst.users):
                    if not isinstance(user, Instruction) or user.parent is None:
                        continue
                    if user.parent is block and not isinstance(user, Phi):
                        continue
                    if isinstance(user, Store) and user is block.instructions[index]:
                        continue
                    load = Load(slot, I32, f"{inst.name}.reload")
                    if isinstance(user, Phi):
                        # Load at the end of the incoming block.
                        for value, pred in user.incoming:
                            if value is inst:
                                pred.insert_before_terminator(load)
                                break
                        else:
                            continue
                    else:
                        user.parent.insert(user.parent.instructions.index(user), load)
                    user.replace_operand(inst, load)
                changed = True
        return changed
