"""SROA: scalar replacement of aggregates.

Splits small stack arrays whose elements are only accessed through
constant-index GEPs into individual scalar slots, then promotes every
promotable scalar to SSA (LLVM's SROA subsumes mem2reg in the same way).
"""

from __future__ import annotations

from ..ir import Alloca, Constant, Function, GEP, Load, Module, Store, I32
from .analysis import PRESERVE_ALL
from .pass_manager import FunctionPass, register_pass
from .mem2reg import promotable_allocas, promote_allocas

# Arrays larger than this are left alone (LLVM's limit is in bytes; ours in elements).
MAX_SPLIT_ELEMENTS = 16


def _splittable(alloca: Alloca) -> bool:
    """True if every use is a constant-index GEP that is only loaded/stored."""
    if alloca.count < 2 or alloca.count > MAX_SPLIT_ELEMENTS:
        return False
    for user in alloca.users:
        if not isinstance(user, GEP) or user.base is not alloca:
            return False
        if not isinstance(user.index, Constant):
            return False
        if not (0 <= user.index.signed_value < alloca.count):
            return False
        for gep_user in user.users:
            if isinstance(gep_user, Load) and gep_user.pointer is user:
                continue
            if isinstance(gep_user, Store) and gep_user.pointer is user and gep_user.value is not user:
                continue
            return False
    return True


@register_pass
class SROA(FunctionPass):
    """Scalar replacement of aggregates + promotion to SSA."""

    name = "sroa"
    module_independent = True
    description = "Split constant-indexed stack arrays into scalars and promote them"
    # Splitting is pure alloca/GEP surgery; promotion preserves analyses for
    # the same reason mem2reg does (see Mem2Reg.preserves).
    preserves = PRESERVE_ALL

    def run_on_function(self, function: Function, module: Module) -> bool:
        changed = False
        entry = function.entry_block

        for block in list(function.blocks):
            for inst in list(block.instructions):
                if not isinstance(inst, Alloca) or not _splittable(inst):
                    continue
                scalars = [Alloca(I32, 1, f"{inst.name}.elem{i}") for i in range(inst.count)]
                for i, scalar in enumerate(scalars):
                    entry.insert(0, scalar)
                for gep in list(inst.users):
                    assert isinstance(gep, GEP)
                    index = gep.index.signed_value  # type: ignore[union-attr]
                    gep.replace_all_uses_with(scalars[index])
                    gep.erase()
                inst.erase()
                changed = True

        changed |= promote_allocas(function, promotable_allocas(function),
                                   analysis=self.analysis)
        return changed
