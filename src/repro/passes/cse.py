"""Redundancy elimination passes: early-cse, gvn and newgvn.

All three are value-numbering passes with different scopes and power:

* ``early-cse``   — dominator-scoped hash CSE of pure expressions plus
                    block-local load CSE / store-to-load forwarding.
* ``gvn``         — everything early-cse does, plus elimination of loads from
                    memory objects that are provably never written in the
                    function (cross-block).
* ``newgvn``      — RPO-based value numbering of pure expressions only.
"""

from __future__ import annotations

from typing import Optional

from ..ir import (
    Alloca, Argument, BasicBlock, BinaryOp, Call, Cast, Constant, DominatorTree,
    Function, GEP, GlobalVariable, ICmp, Instruction, Load, Module, Phi, Select,
    Store, Value, COMMUTATIVE_OPS,
)
from .analysis import PRESERVE_ALL, AnalysisManager
from .pass_manager import FunctionPass, register_pass
from .utils import replace_and_erase, underlying_object


def _operand_key(value: Value):
    if isinstance(value, Constant):
        return ("const", value.value)
    return ("val", id(value))


def expression_key(inst: Instruction) -> Optional[tuple]:
    """A hashable key identifying the pure expression an instruction computes."""
    if isinstance(inst, BinaryOp):
        lhs, rhs = _operand_key(inst.lhs), _operand_key(inst.rhs)
        if inst.opcode in COMMUTATIVE_OPS and rhs < lhs:
            lhs, rhs = rhs, lhs
        return ("binop", inst.opcode, lhs, rhs)
    if isinstance(inst, ICmp):
        return ("icmp", inst.predicate, _operand_key(inst.lhs), _operand_key(inst.rhs))
    if isinstance(inst, Select):
        return ("select", _operand_key(inst.condition),
                _operand_key(inst.true_value), _operand_key(inst.false_value))
    if isinstance(inst, GEP):
        return ("gep", _operand_key(inst.base), _operand_key(inst.index), inst.element_size)
    if isinstance(inst, Cast):
        return ("cast", inst.opcode, _operand_key(inst.value), str(inst.type))
    return None


class _ScopedTable:
    """A stack of hash scopes following the dominator tree walk."""

    def __init__(self):
        self.scopes: list[dict] = [{}]

    def push(self) -> None:
        self.scopes.append({})

    def pop(self) -> None:
        self.scopes.pop()

    def lookup(self, key):
        for scope in reversed(self.scopes):
            if key in scope:
                return scope[key]
        return None

    def insert(self, key, value) -> None:
        self.scopes[-1][key] = value


def module_store_summary(module) -> tuple[set[int], set[int]]:
    """(ids of globals written anywhere, ids of objects escaping via stores).

    The module-wide half of :func:`never_written_objects`.  Load elimination
    never adds/removes stores, so one summary stays valid for a whole GVN run
    instead of rescanning every function per optimized function.
    """
    written_globals: set[int] = set()
    escaped: set[int] = set()
    for scanned in module.defined_functions():
        for inst in scanned.instructions():
            if isinstance(inst, Store):
                target = underlying_object(inst.pointer)
                if isinstance(target, GlobalVariable):
                    written_globals.add(id(target))
                escaped.add(id(underlying_object(inst.value)))
    return written_globals, escaped


def never_written_objects(function: Function,
                          module_summary: Optional[tuple[set[int], set[int]]] = None
                          ) -> set[int]:
    """ids of allocas/globals that are never stored to and never escape.

    Loads from such objects can be safely eliminated across basic blocks.
    ``module_summary`` (see :func:`module_store_summary`) supplies the
    module-wide global-write/escape sets; without one, only this function is
    scanned (matching the seed's behaviour for module-less functions).
    """
    candidates: dict[int, Value] = {}
    for inst in function.instructions():
        if isinstance(inst, Alloca):
            candidates[id(inst)] = inst
    if function.module is not None:
        for gv in function.module.globals.values():
            candidates[id(gv)] = gv

    if module_summary is None and function.module is not None:
        module_summary = module_store_summary(function.module)
    written: set[int] = set(module_summary[0]) if module_summary else set()
    escaped: set[int] = set(module_summary[1]) if module_summary else set()
    for inst in function.instructions():
        if isinstance(inst, Store):
            written.add(id(underlying_object(inst.pointer)))
            escaped.add(id(underlying_object(inst.value)))
        elif isinstance(inst, Call):
            for arg in inst.args:
                escaped.add(id(underlying_object(arg)))
    return {oid for oid in candidates if oid not in written and oid not in escaped}


def _block_local_load_cse(block: BasicBlock, safe_objects: set[int],
                          available_safe_loads: dict,
                          domtree: Optional[DominatorTree] = None) -> bool:
    """Forward loads/stores within one block; extend across blocks only for
    objects in ``safe_objects`` (never written in the function)."""
    changed = False
    available: dict = {}
    for inst in list(block.instructions):
        if inst.parent is None:
            continue
        if isinstance(inst, Load):
            key = _operand_key(inst.pointer)
            existing = available.get(key)
            if existing is None and id(underlying_object(inst.pointer)) in safe_objects:
                candidate = available_safe_loads.get(key)
                # The cached load must dominate this use to keep SSA well formed.
                if candidate is not None and candidate.parent is not None \
                        and domtree is not None \
                        and domtree.instruction_dominates(candidate, inst):
                    existing = candidate
            if existing is not None and getattr(existing, "parent", True) is not None:
                replace_and_erase(inst, existing)
                changed = True
                continue
            available[key] = inst
            if id(underlying_object(inst.pointer)) in safe_objects:
                available_safe_loads[key] = inst
        elif isinstance(inst, Store):
            # Conservative: a store invalidates every cached load except the
            # one it itself establishes (store-to-load forwarding).
            available.clear()
            available[_operand_key(inst.pointer)] = inst.value
        elif isinstance(inst, Call):
            available.clear()
    return changed


def _dominator_scoped_cse(function: Function, eliminate_loads: bool,
                          cross_block_loads: bool,
                          analysis: Optional[AnalysisManager] = None,
                          module_summary=None) -> bool:
    """Shared engine for early-cse and gvn."""
    if not function.blocks:
        return False
    domtree = analysis.domtree(function) if analysis is not None \
        else DominatorTree(function)
    expressions = _ScopedTable()
    changed = False
    safe_objects = never_written_objects(function, module_summary) \
        if cross_block_loads else set()
    available_safe_loads: dict = {}

    def visit(block: BasicBlock) -> None:
        nonlocal changed
        expressions.push()
        for inst in list(block.instructions):
            if inst.parent is None:
                continue
            key = expression_key(inst)
            if key is None:
                continue
            existing = expressions.lookup(key)
            if existing is not None and existing.parent is not None:
                replace_and_erase(inst, existing)
                changed = True
            else:
                expressions.insert(key, inst)
        if eliminate_loads:
            changed |= _block_local_load_cse(block, safe_objects, available_safe_loads, domtree)
        for child in domtree.children(block):
            visit(child)
        expressions.pop()

    import sys
    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, 10_000))
    try:
        visit(function.entry_block)
    finally:
        sys.setrecursionlimit(old_limit)
    return changed


@register_pass
class EarlyCSE(FunctionPass):
    """Fast dominator-scoped common-subexpression elimination."""

    name = "early-cse"
    module_independent = True
    description = "Dominator-scoped CSE with block-local load elimination"
    preserves = PRESERVE_ALL  # replaces/erases non-terminators only

    def run_on_function(self, function: Function, module: Module) -> bool:
        return _dominator_scoped_cse(function, eliminate_loads=True,
                                     cross_block_loads=False,
                                     analysis=self.analysis)


@register_pass
class GVN(FunctionPass):
    """Global value numbering with redundant-load elimination.

    Module-dependent (it consults the whole module's global writes), so it is
    excluded from no-op skipping; the module-wide summary is computed once
    per run — load elimination never changes the store set it summarizes.
    """

    name = "gvn"
    description = "Global value numbering and load elimination"
    preserves = PRESERVE_ALL  # replaces/erases non-terminators only

    def run(self, module: Module) -> bool:
        self._module_summary = module_store_summary(module)
        try:
            return super().run(module)
        finally:
            self._module_summary = None

    def run_on_function(self, function: Function, module: Module) -> bool:
        summary = getattr(self, "_module_summary", None)
        return _dominator_scoped_cse(function, eliminate_loads=True,
                                     cross_block_loads=True,
                                     analysis=self.analysis,
                                     module_summary=summary)


@register_pass
class NewGVN(FunctionPass):
    """RPO-based value numbering of pure expressions (no memory optimization)."""

    name = "newgvn"
    module_independent = True
    description = "Value numbering of pure expressions over the whole function"
    preserves = PRESERVE_ALL  # replaces/erases non-terminators only

    def run_on_function(self, function: Function, module: Module) -> bool:
        if not function.blocks:
            return False
        changed = False
        domtree = self.analysis.domtree(function)
        leader: dict[tuple, Instruction] = {}
        for block in domtree.rpo:
            for inst in list(block.instructions):
                if inst.parent is None:
                    continue
                key = expression_key(inst)
                if key is None:
                    continue
                existing = leader.get(key)
                if existing is not None and existing.parent is not None \
                        and domtree.instruction_dominates(existing, inst):
                    replace_and_erase(inst, existing)
                    changed = True
                else:
                    leader[key] = inst
        return changed
