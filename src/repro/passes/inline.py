"""Function inlining passes: inline, always-inline and partial-inliner.

Inlining is the most beneficial pass for zkVMs in the paper's study because
it removes call/return and argument-marshalling instructions — every one of
which has real proving cost.  The cost model here mirrors LLVM's: a callee is
inlined when its estimated size is below ``inline_threshold`` plus bonuses
for constant arguments; ``alwaysinline`` functions are always inlined.
"""

from __future__ import annotations

from typing import Optional

from ..ir import (
    Alloca, BasicBlock, Branch, Call, Constant, Function, Instruction, Module,
    Phi, Ret, Unreachable, clone_function_body, I32, VOID,
)
from ..ir.cloning import clone_instruction
from .pass_manager import ModulePass, PassConfig, register_pass
from .utils import constant_value


# ---------------------------------------------------------------------------
# Cost model
# ---------------------------------------------------------------------------
def callee_cost(callee: Function) -> int:
    """LLVM-style size estimate: instructions excluding debug-ish overhead."""
    cost = 0
    for inst in callee.instructions():
        if isinstance(inst, (Alloca, Phi)):
            continue
        if isinstance(inst, Call):
            cost += 5  # calls are weighted heavier, as in LLVM's InlineCost
        else:
            cost += 1
    return cost


def is_recursive(function: Function) -> bool:
    return any(isinstance(i, Call) and i.callee == function.name
               for i in function.instructions())


def should_inline(site: Call, caller: Function, callee: Function,
                  config: PassConfig, always_only: bool) -> bool:
    if callee.is_declaration or is_recursive(callee) or callee is caller:
        return False
    if "noinline" in callee.attributes:
        return False
    if "alwaysinline" in callee.attributes:
        return True
    if always_only:
        return callee_cost(callee) <= config.always_inline_threshold
    cost = callee_cost(callee)
    threshold = config.inline_threshold
    # Bonus for constant arguments (they usually unlock further simplification).
    constant_args = sum(1 for a in site.args if constant_value(a) is not None)
    threshold += 2 * config.inline_call_penalty * constant_args
    # A call instruction we remove is itself worth the call penalty.
    cost -= config.inline_call_penalty
    return cost <= threshold


# ---------------------------------------------------------------------------
# Mechanics
# ---------------------------------------------------------------------------
def inline_call_site(site: Call, caller: Function, callee: Function) -> bool:
    """Inline ``callee`` at ``site``.  Returns True on success."""
    block = site.parent
    if block is None or block.parent is not caller:
        return False

    # 1. Split the caller block after the call.
    site_index = block.instructions.index(site)
    after = caller.add_block(f"{callee.name}.after", after=block)
    for inst in list(block.instructions[site_index + 1:]):
        block.remove_instruction(inst)
        after.append(inst)
    # Successor phis must now refer to the continuation block.
    for succ in after.successors:
        for phi in succ.phis():
            phi.replace_incoming_block(block, after)

    # 2. Clone the callee body into a scratch function, mapping arguments.
    scratch = Function(f"{callee.name}.inlined", callee.return_type,
                       [a.type for a in callee.arguments],
                       [a.name for a in callee.arguments], caller.module)
    value_map = {arg: actual for arg, actual in zip(callee.arguments, site.args)}
    # clone_function_body maps formal->formal by default; pre-seed with actuals.
    cloned_map, block_map = clone_function_body(callee, scratch, value_map)

    # The scratch function's own arguments are unused placeholders; rewire any
    # use of them to the actual call arguments.
    for formal, scratch_arg in zip(callee.arguments, scratch.arguments):
        scratch_arg.replace_all_uses_with(value_map.get(formal, scratch_arg))

    # 3. Move cloned blocks into the caller (renaming to stay unique).
    cloned_blocks = [block_map[b] for b in callee.blocks]
    insert_at = caller.blocks.index(block) + 1
    for offset, cloned in enumerate(cloned_blocks):
        cloned.name = caller.unique_name(f"{callee.name}.{cloned.name}")
        cloned.parent = caller
        caller.blocks.insert(insert_at + offset, cloned)
    caller.invalidate_cfg()

    # Hoist the callee's allocas into the caller entry block.
    entry = caller.entry_block
    for cloned in cloned_blocks:
        for inst in list(cloned.instructions):
            if isinstance(inst, Alloca):
                cloned.remove_instruction(inst)
                entry.insert(0, inst)

    # 4. Rewrite returns into branches to the continuation block.
    return_values: list[tuple] = []
    for cloned in cloned_blocks:
        term = cloned.terminator
        if isinstance(term, Ret):
            if term.value is not None:
                return_values.append((term.value, cloned))
            term.erase()
            cloned.append(Branch(after))

    # 5. The original block now falls through into the cloned entry.
    block.append(Branch(cloned_blocks[0]))

    # 6. Replace uses of the call's result.
    if site.users:
        if len(return_values) == 1:
            replacement = return_values[0][0]
            site.replace_all_uses_with(replacement)
        elif return_values:
            phi = Phi(I32, f"{callee.name}.retval")
            for value, pred in return_values:
                phi.add_incoming(value, pred)
            after.insert(0, phi)
            site.replace_all_uses_with(phi)
        else:
            site.replace_all_uses_with(Constant(0))
    site.erase()
    return True


def _call_sites(module: Module):
    for function in module.defined_functions():
        for block in function.blocks:
            for inst in block.instructions:
                if isinstance(inst, Call) and not inst.callee.startswith("__"):
                    yield function, inst


class _InlinerBase(ModulePass):
    """Shared driver for the inlining passes.

    Inlining rewrites the *caller* only (the callee body is read, never
    mutated), so the pass reports the exact callers it touched and the
    analysis manager keeps every other function's analyses alive.
    """

    always_only = False
    max_rounds = 4
    tracks_modified = True

    def run(self, module: Module) -> bool:
        changed = False
        for _ in range(self.max_rounds):
            round_changed = False
            for caller, site in list(_call_sites(module)):
                if site.parent is None:
                    continue
                callee = module.get_function(site.callee)
                if callee is None:
                    continue
                if should_inline(site, caller, callee, self.config, self.always_only):
                    if inline_call_site(site, caller, callee):
                        self.note_modified(caller)
                        round_changed = True
            changed |= round_changed
            if not round_changed:
                break
        return changed


@register_pass
class Inline(_InlinerBase):
    """Threshold-driven function inlining."""

    name = "inline"
    description = "Inline functions whose size estimate is below the threshold"
    always_only = False


@register_pass
class AlwaysInline(_InlinerBase):
    """Inline only functions marked alwaysinline (or trivially small ones)."""

    name = "always-inline"
    description = "Inline alwaysinline and trivially small functions"
    always_only = True


@register_pass
class PartialInliner(ModulePass):
    """Partial inlining: peel a callee's early-return guard into the caller.

    When a callee starts with ``if (cond) return K;`` and the guard block
    contains only speculatable instructions, the guard is evaluated at the
    call site and the (expensive) call is only made on the slow path.
    """

    name = "partial-inliner"
    description = "Inline early-return guards of callees at their call sites"
    tracks_modified = True  # rewrites the caller; callees are only read

    def run(self, module: Module) -> bool:
        changed = False
        for caller, site in list(_call_sites(module)):
            if site.parent is None:
                continue
            callee = module.get_function(site.callee)
            if callee is None or callee.is_declaration or callee is caller:
                continue
            guard = self._early_return_guard(callee)
            if guard is None:
                continue
            if self._apply(site, caller, callee, guard):
                self.note_modified(caller)
                changed = True
        return changed

    @staticmethod
    def _early_return_guard(callee: Function):
        """Return (guard instructions, condition, early block, early constant,
        continue-on-true?) if the callee starts with a guard, else None."""
        from ..ir import CondBranch

        entry = callee.entry_block
        body = [i for i in entry.instructions if not i.is_terminator]
        if len(body) > 4 or any(not i.is_safe_to_speculate() for i in body):
            return None
        term = entry.terminator
        if not isinstance(term, CondBranch):
            return None
        for early, taken_on_true in ((term.true_target, True), (term.false_target, False)):
            instructions = early.instructions
            if len(instructions) == 1 and isinstance(instructions[0], Ret):
                ret = instructions[0]
                value = ret.value if ret.value is not None else Constant(0)
                if constant_value(value) is None and value not in callee.arguments:
                    continue
                return body, term.condition, value, taken_on_true
        return None

    @staticmethod
    def _apply(site: Call, caller: Function, callee: Function, guard) -> bool:
        from ..ir import CondBranch

        body, condition, early_value, taken_on_true = guard
        block = site.parent
        site_index = block.instructions.index(site)

        # Clone the guard computation at the call site, mapping formals to actuals.
        value_map = {arg: actual for arg, actual in zip(callee.arguments, site.args)}
        cloned_condition = condition
        for inst in body:
            cloned = clone_instruction(inst, value_map, {})
            block.insert(block.instructions.index(site), cloned)
            value_map[inst] = cloned
        cloned_condition = value_map.get(condition, condition)
        mapped_early = value_map.get(early_value, early_value)

        # Split: head -> (early path | call path) -> continue.
        call_block = caller.add_block(f"{callee.name}.call", after=block)
        cont_block = caller.add_block(f"{callee.name}.cont", after=call_block)
        for inst in list(block.instructions[block.instructions.index(site):]):
            block.remove_instruction(inst)
            call_block.append(inst)
        for succ in call_block.successors:
            for phi in succ.phis():
                phi.replace_incoming_block(block, call_block)
        # Move everything after the call into the continuation block.
        call_index = call_block.instructions.index(site)
        for inst in list(call_block.instructions[call_index + 1:]):
            call_block.remove_instruction(inst)
            cont_block.append(inst)
        for succ in cont_block.successors:
            for phi in succ.phis():
                phi.replace_incoming_block(call_block, cont_block)
        call_block.append(Branch(cont_block))

        if taken_on_true:
            block.append(CondBranch(cloned_condition, cont_block, call_block))
        else:
            block.append(CondBranch(cloned_condition, call_block, cont_block))

        # The call's result is either the callee result or the early constant.
        if site.users:
            phi = Phi(I32, f"{callee.name}.partial")
            phi.add_incoming(mapped_early, block)
            phi.add_incoming(site, call_block)
            cont_block.insert(0, phi)
            for user in list(site.users):
                if user is not phi:
                    user.replace_operand(site, phi)
        return True
