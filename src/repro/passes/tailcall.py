"""Tail-call elimination (tailcall): turn self-recursive tail calls into loops."""

from __future__ import annotations

from ..ir import (
    Alloca, Argument, Branch, Call, Function, Instruction, Module, Ret, Store,
)
from .pass_manager import FunctionPass, register_pass


def _argument_slots(function: Function) -> dict[Argument, Alloca] | None:
    """Map each argument to the stack slot it is spilled into at function entry.

    The -O0 code produced by the frontend spills every parameter exactly once;
    tail-call elimination relies on that shape (arguments used anywhere else
    make the rewrite unsafe, so we bail out).
    """
    slots: dict[Argument, Alloca] = {}
    entry = function.entry_block
    for argument in function.arguments:
        stores = [u for u in argument.users if isinstance(u, Store) and u.value is argument]
        if len(stores) != 1 or len(argument.users) != 1:
            return None
        store = stores[0]
        if store.parent is not entry or not isinstance(store.pointer, Alloca):
            return None
        slots[argument] = store.pointer
    return slots


def _is_tail_call(call: Call, function: Function) -> bool:
    """A self-call whose result (if any) is immediately returned."""
    if call.callee != function.name or call.parent is None:
        return False
    block = call.parent
    index = block.instructions.index(call)
    rest = block.instructions[index + 1:]
    if len(rest) != 1 or not isinstance(rest[0], Ret):
        return False
    ret = rest[0]
    if ret.value is None:
        return not call.users
    return ret.value is call and len(call.users) == 1


@register_pass
class TailCallElim(FunctionPass):
    """Eliminate self-recursive tail calls by branching back to the loop top."""

    name = "tailcall"
    module_independent = True
    description = "Convert self-recursive tail calls into loops"

    def run_on_function(self, function: Function, module: Module) -> bool:
        if not function.arguments and function.is_declaration:
            return False
        tail_calls = [inst for inst in function.instructions()
                      if isinstance(inst, Call) and _is_tail_call(inst, function)]
        if not tail_calls:
            return False
        slots = _argument_slots(function)
        if slots is None and function.arguments:
            return False

        # Split the entry block after the argument spills: the second half
        # becomes the loop header we branch back to.
        entry = function.entry_block
        split_index = 0
        for i, inst in enumerate(entry.instructions):
            if isinstance(inst, Alloca) or (isinstance(inst, Store)
                                            and isinstance(inst.value, Argument)):
                split_index = i + 1
        header = function.add_block("tailrecurse", after=entry)
        for inst in list(entry.instructions[split_index:]):
            entry.remove_instruction(inst)
            header.append(inst)
        for succ in header.successors:
            for phi in succ.phis():
                phi.replace_incoming_block(entry, header)
        entry.append(Branch(header))

        changed = False
        for call in tail_calls:
            block = call.parent
            if block is None:
                continue
            ret = block.instructions[block.instructions.index(call) + 1]
            # Store the new argument values into the parameter slots, then loop.
            for argument, value in zip(function.arguments, call.args):
                slot = slots[argument] if slots else None
                if slot is not None:
                    block.insert(block.instructions.index(call), Store(value, slot))
            ret.erase()
            call.erase()
            block.append(Branch(header))
            changed = True
        return changed
