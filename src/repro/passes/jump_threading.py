"""Jump threading: forward branches whose outcome is known per-predecessor.

When a block's conditional branch depends on a phi whose incoming value is a
constant for some predecessor, that predecessor can jump directly to the
branch target, skipping the block.  This removes dynamically executed
branches (and is one of the passes with markedly larger benefit on x86,
where it also removes misprediction stalls).
"""

from __future__ import annotations

from ..ir import (
    BasicBlock, Branch, CondBranch, Constant, Function, ICmp, Instruction,
    Module, Phi, remove_unreachable_blocks,
)
from .pass_manager import FunctionPass, register_pass
from .utils import constant_value, fold_icmp


def _known_condition_for_pred(block: BasicBlock, pred: BasicBlock) -> int | None:
    """If ``block``'s branch condition is a known constant when entered from
    ``pred``, return it (0/1); otherwise None."""
    term = block.terminator
    if not isinstance(term, CondBranch):
        return None
    cond = term.condition

    def value_from_pred(value) -> int | None:
        if isinstance(value, Constant):
            return value.value
        if isinstance(value, Phi) and value.parent is block:
            incoming = value.incoming_for_block(pred)
            if incoming is not None:
                return constant_value(incoming)
        return None

    direct = value_from_pred(cond)
    if direct is not None:
        return direct & 1
    if isinstance(cond, ICmp) and cond.parent is block:
        lhs = value_from_pred(cond.lhs)
        rhs = value_from_pred(cond.rhs)
        if lhs is not None and rhs is not None:
            return fold_icmp(cond.predicate, lhs, rhs)
    return None


def _threadable(block: BasicBlock, threshold: int) -> bool:
    """The block may be bypassed if it computes nothing a successor needs."""
    body = [i for i in block.instructions if not i.is_terminator]
    if len(body) > threshold:
        return False
    for inst in body:
        if isinstance(inst, Phi):
            continue
        if inst.has_side_effects or inst.may_read_memory:
            return False
        # Results used outside the block cannot simply be skipped.
        for user in inst.users:
            if isinstance(user, Instruction) and user.parent is not block:
                return False
    # Phi results used outside the block would need rewiring; keep it simple.
    for phi in block.phis():
        for user in phi.users:
            if isinstance(user, Instruction) and user.parent is not block:
                return False
    return True


@register_pass
class JumpThreading(FunctionPass):
    """Thread control flow through blocks with predecessor-determined branches."""

    name = "jump-threading"
    module_independent = True
    description = "Redirect predecessors past blocks whose branch outcome they determine"

    def run_on_function(self, function: Function, module: Module) -> bool:
        changed = False
        for _ in range(4):
            round_changed = False
            for block in list(function.blocks):
                term = block.terminator
                if not isinstance(term, CondBranch):
                    continue
                if not _threadable(block, self.config.jump_threading_threshold):
                    continue
                for pred in list(block.predecessors):
                    if block is function.entry_block:
                        break
                    known = _known_condition_for_pred(block, pred)
                    if known is None:
                        continue
                    target = term.true_target if known else term.false_target
                    if target is block:
                        continue
                    # The target's phis need an entry for the new predecessor;
                    # only thread when the target has no phis (the common shape
                    # for -O0-style code) to keep the rewrite simple and sound.
                    if target.phis():
                        continue
                    pred.replace_successor(block, target)
                    for phi in block.phis():
                        phi.remove_incoming(pred)
                    round_changed = True
            if round_changed:
                remove_unreachable_blocks(function)
                changed = True
            else:
                break
        return changed
