"""The seed repository's analysis implementations, preserved verbatim.

This is the pass-pipeline analogue of :mod:`repro.emulator.reference`: the
exact ``DominatorTree`` / ``LoopInfo`` / dominance-frontier / CFG-query code
the seed pass manager rebuilt inside every pass, kept runnable so
``benchmarks/bench_passes.py`` can measure the new invalidation-aware pipeline
against the real seed baseline (and so a future session can differential-test
analysis rewrites against the original algorithms).

Differences from the seed are annotated and limited to what is required to
drive today's passes:

* ``SeedLoop.body_in_rpo`` exists (the unroller/unswitcher need it); it uses
  the fixed RPO ordering because the seed's bare ``list(loop.blocks)`` order
  emitted use-before-def IR on an address-dependent subset of runs — a latent
  seed miscompile this PR fixes for both pipelines.
* ``SeedLoop.blocks`` remains an address-ordered ``set`` exactly like the
  seed, so timings include the seed's real behaviour — which also means a
  seed-baseline pipeline run is *not* byte-deterministic.  Use the
  ``analysis_cache=False`` (fresh) mode, not this module, as the differential
  oracle.

Do not "optimize" this module: its value is fidelity to the seed's cost
model (per-query predecessor scans, per-pass tree construction, per-edge
idom-chain dominance walks).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field

from ..ir.basic_block import BasicBlock
from ..ir.function import Function
from ..ir.instructions import (
    Branch, CondBranch, Instruction, Phi, Ret, Unreachable,
)
from ..ir.values import Value


# -- seed cfg.py ---------------------------------------------------------------
def seed_predecessors_map(function: Function) -> dict[BasicBlock, list[BasicBlock]]:
    """Compute a predecessor map for every block in one pass over the CFG."""
    preds: dict[BasicBlock, list[BasicBlock]] = {b: [] for b in function.blocks}
    for block in function.blocks:
        for succ in block.successors:
            if succ in preds:
                preds[succ].append(block)
    return preds


def seed_postorder(function: Function) -> list[BasicBlock]:
    """Post-order traversal of the CFG from the entry block."""
    visited: set[BasicBlock] = set()
    order: list[BasicBlock] = []

    def visit(block: BasicBlock) -> None:
        stack = [(block, iter(block.successors))]
        visited.add(block)
        while stack:
            current, it = stack[-1]
            advanced = False
            for succ in it:
                if succ not in visited:
                    visited.add(succ)
                    stack.append((succ, iter(succ.successors)))
                    advanced = True
                    break
            if not advanced:
                order.append(current)
                stack.pop()

    if function.blocks:
        visit(function.entry_block)
    return order


def seed_reverse_postorder(function: Function) -> list[BasicBlock]:
    return list(reversed(seed_postorder(function)))


def seed_reachable_blocks(function: Function) -> set[BasicBlock]:
    """Blocks reachable from the entry block (seed: recomputed per call)."""
    if not function.blocks:
        return set()
    seen: set[BasicBlock] = set()
    worklist = [function.entry_block]
    while worklist:
        block = worklist.pop()
        if block in seen:
            continue
        seen.add(block)
        worklist.extend(block.successors)
    return seen


# -- seed dominators.py --------------------------------------------------------
class SeedDominatorTree:
    """Immediate-dominator tree of a function's CFG (seed implementation)."""

    def __init__(self, function: Function):
        self.function = function
        self.rpo = seed_reverse_postorder(function)
        self._rpo_index = {b: i for i, b in enumerate(self.rpo)}
        self.idom: dict[BasicBlock, BasicBlock] = {}
        self._children: dict[BasicBlock, list[BasicBlock]] = {}
        self._compute()

    def _compute(self) -> None:
        if not self.rpo:
            return
        entry = self.rpo[0]
        preds = seed_predecessors_map(self.function)
        idom: dict[BasicBlock, BasicBlock | None] = {b: None for b in self.rpo}
        idom[entry] = entry
        changed = True
        while changed:
            changed = False
            for block in self.rpo[1:]:
                new_idom: BasicBlock | None = None
                for pred in preds[block]:
                    if pred not in self._rpo_index or idom.get(pred) is None:
                        continue
                    if new_idom is None:
                        new_idom = pred
                    else:
                        new_idom = self._intersect(pred, new_idom, idom)
                if new_idom is not None and idom[block] is not new_idom:
                    idom[block] = new_idom
                    changed = True
        self.idom = {b: d for b, d in idom.items() if d is not None}
        self._children = {b: [] for b in self.rpo}
        for block, dom in self.idom.items():
            if block is not dom:
                self._children[dom].append(block)

    def _intersect(self, b1: BasicBlock, b2: BasicBlock,
                   idom: dict[BasicBlock, BasicBlock | None]) -> BasicBlock:
        index = self._rpo_index
        while b1 is not b2:
            while index[b1] > index[b2]:
                b1 = idom[b1]  # type: ignore[assignment]
            while index[b2] > index[b1]:
                b2 = idom[b2]  # type: ignore[assignment]
        return b1

    # -- queries -----------------------------------------------------------
    def dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        if a is b:
            return True
        runner = self.idom.get(b)
        while runner is not None:
            if runner is a:
                return True
            if runner is self.idom.get(runner):
                break
            runner = self.idom.get(runner)
        return False

    def strictly_dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        return a is not b and self.dominates(a, b)

    def children(self, block: BasicBlock) -> list[BasicBlock]:
        return list(self._children.get(block, []))

    def instruction_dominates(self, a: Instruction, b: Instruction) -> bool:
        if a.parent is b.parent and a.parent is not None:
            block = a.parent
            return block.instructions.index(a) < block.instructions.index(b)
        if a.parent is None or b.parent is None:
            return False
        return self.strictly_dominates(a.parent, b.parent)

    def value_dominates_use(self, value: Value, user: Instruction) -> bool:
        if not isinstance(value, Instruction):
            return True
        if isinstance(user, Phi):
            for incoming_value, incoming_block in user.incoming:
                if incoming_value is value and value.parent is not None:
                    if not self.dominates(value.parent, incoming_block):
                        return False
            return True
        return self.instruction_dominates(value, user)


def seed_dominance_frontiers(function: Function,
                             domtree: SeedDominatorTree | None = None
                             ) -> dict[BasicBlock, set[BasicBlock]]:
    """Compute the dominance frontier of every block (seed implementation)."""
    domtree = domtree or SeedDominatorTree(function)
    preds = seed_predecessors_map(function)
    frontiers: dict[BasicBlock, set[BasicBlock]] = {b: set() for b in function.blocks}
    for block in domtree.rpo:
        block_preds = preds.get(block, [])
        if len(block_preds) < 2:
            continue
        for pred in block_preds:
            if pred not in domtree.idom:
                continue
            runner = pred
            while runner is not domtree.idom.get(block) and runner in domtree.idom:
                frontiers[runner].add(block)
                next_runner = domtree.idom[runner]
                if next_runner is runner:
                    break
                runner = next_runner
    return frontiers


# -- seed loops.py -------------------------------------------------------------
@dataclass
class SeedLoop:
    """A natural loop (seed implementation: address-ordered block set)."""

    header: BasicBlock
    blocks: set = field(default_factory=set)
    latches: list = field(default_factory=list)
    parent: "SeedLoop | None" = None
    subloops: list = field(default_factory=list)

    def contains(self, block: BasicBlock) -> bool:
        return block in self.blocks

    @property
    def depth(self) -> int:
        depth = 1
        parent = self.parent
        while parent is not None:
            depth += 1
            parent = parent.parent
        return depth

    def preheader(self) -> BasicBlock | None:
        outside = [p for p in self.header.predecessors if p not in self.blocks]
        if len(outside) == 1 and len(outside[0].successors) == 1:
            return outside[0]
        return None

    def exit_blocks(self) -> list[BasicBlock]:
        exits: list[BasicBlock] = []
        for block in self.blocks:
            for succ in block.successors:
                if succ not in self.blocks and succ not in exits:
                    exits.append(succ)
        return exits

    def exiting_blocks(self) -> list[BasicBlock]:
        return [b for b in self.blocks
                if any(s not in self.blocks for s in b.successors)]

    def body_in_rpo(self) -> list[BasicBlock]:
        """Not in the seed (see module docstring): RPO over the loop body."""
        visited = {self.header}
        order: list[BasicBlock] = []
        stack = [(self.header, iter(self.header.successors))]
        while stack:
            block, successors = stack[-1]
            advanced = False
            for succ in successors:
                if succ in self.blocks and succ not in visited:
                    visited.add(succ)
                    stack.append((succ, iter(succ.successors)))
                    advanced = True
                    break
            if not advanced:
                order.append(block)
                stack.pop()
        order.reverse()
        order.extend(b for b in self.blocks if b not in visited)
        return order


class SeedLoopInfo:
    """All natural loops of a function (seed implementation)."""

    def __init__(self, function: Function, domtree: SeedDominatorTree | None = None):
        self.function = function
        self.domtree = domtree or SeedDominatorTree(function)
        self.top_level: list[SeedLoop] = []
        self._block_to_loop: dict[BasicBlock, SeedLoop] = {}
        self._discover()

    def _discover(self) -> None:
        preds = seed_predecessors_map(self.function)
        headers: dict[BasicBlock, list[BasicBlock]] = {}
        for block in self.function.blocks:
            for succ in block.successors:
                if self.domtree.dominates(succ, block):
                    headers.setdefault(succ, []).append(block)

        loops: list[SeedLoop] = []
        for header, latches in headers.items():
            loop = SeedLoop(header=header, latches=latches)
            loop.blocks.add(header)
            worklist = list(latches)
            while worklist:
                block = worklist.pop()
                if block in loop.blocks:
                    continue
                loop.blocks.add(block)
                worklist.extend(preds.get(block, []))
            loops.append(loop)

        loops.sort(key=lambda l: len(l.blocks))
        for i, inner in enumerate(loops):
            for outer in loops[i + 1:]:
                if inner.header in outer.blocks and inner is not outer:
                    inner.parent = outer
                    outer.subloops.append(inner)
                    break
        self.top_level = [l for l in loops if l.parent is None]
        for loop in loops:
            for block in loop.blocks:
                existing = self._block_to_loop.get(block)
                if existing is None or len(loop.blocks) < len(existing.blocks):
                    self._block_to_loop[block] = loop

    def loops(self) -> list[SeedLoop]:
        result: list[SeedLoop] = []

        def visit(loop: SeedLoop) -> None:
            result.append(loop)
            for sub in loop.subloops:
                visit(sub)

        for loop in self.top_level:
            visit(loop)
        return result

    def innermost_loops(self) -> list[SeedLoop]:
        return [l for l in self.loops() if not l.subloops]

    def loop_for(self, block: BasicBlock) -> SeedLoop | None:
        return self._block_to_loop.get(block)

    def loop_depth(self, block: BasicBlock) -> int:
        loop = self.loop_for(block)
        return loop.depth if loop is not None else 0


# -- seed IR substrate ---------------------------------------------------------
@contextmanager
def seed_substrate():
    """Temporarily reinstate the seed's IR hot-path implementations.

    The invalidation-aware pipeline also rewrote the IR layer's hottest
    query paths (``is_terminator`` became a class flag instead of an
    isinstance property, ``successors`` stopped re-deriving the terminator,
    ``predecessors`` stopped scanning every block per query, constant folding
    stopped importing the interpreter per call).  A faithful measurement of
    "the seed pass manager" must include those per-query costs, so this
    context swaps the preserved seed implementations back in for the scope.

    Process-global and not thread-safe — strictly for the benchmarking
    baseline (``PassManager(seed_baseline=True)``); everything is restored on
    exit.
    """
    terminators = (Branch, CondBranch, Ret, Unreachable)
    saved_class_flags = {}
    for cls in terminators:
        saved_class_flags[cls] = cls.__dict__.get("is_terminator")
        if "is_terminator" in cls.__dict__:
            delattr(cls, "is_terminator")
    saved_base_flag = Instruction.is_terminator
    Instruction.is_terminator = property(
        lambda self: isinstance(self, terminators))

    saved_successors = BasicBlock.successors

    def _seed_successors(self):
        term = self.terminator
        if term is None:
            return []
        return list(getattr(term, "successors", []))

    BasicBlock.successors = property(_seed_successors)

    saved_predecessors = BasicBlock.predecessors

    def _seed_predecessors(self):
        if self.parent is None:
            return []
        preds = []
        for block in self.parent.blocks:
            if self in block.successors:
                preds.append(block)
        return preds

    BasicBlock.predecessors = property(_seed_predecessors)

    from . import utils as pass_utils
    saved_binop, saved_icmp = pass_utils._BINOP, pass_utils._ICMP

    def _seed_fold_binop(opcode, lhs, rhs):
        from ..ir.interpreter import Interpreter  # per-call, as the seed did

        return Interpreter._binop(opcode, lhs, rhs)

    def _seed_fold_icmp(predicate, lhs, rhs):
        from ..ir import interpreter  # per-call, as the seed did

        slhs, srhs = interpreter._to_signed(lhs), interpreter._to_signed(rhs)
        table = {
            "eq": lhs == rhs, "ne": lhs != rhs,
            "slt": slhs < srhs, "sle": slhs <= srhs,
            "sgt": slhs > srhs, "sge": slhs >= srhs,
            "ult": lhs < rhs, "ule": lhs <= rhs,
            "ugt": lhs > rhs, "uge": lhs >= rhs,
        }
        return table[predicate]

    pass_utils._BINOP, pass_utils._ICMP = _seed_fold_binop, _seed_fold_icmp
    try:
        yield
    finally:
        Instruction.is_terminator = saved_base_flag
        for cls, flag in saved_class_flags.items():
            if flag is not None:
                setattr(cls, "is_terminator", flag)
        BasicBlock.successors = saved_successors
        BasicBlock.predecessors = saved_predecessors
        pass_utils._BINOP, pass_utils._ICMP = saved_binop, saved_icmp


__all__ = [
    "SeedDominatorTree", "SeedLoop", "SeedLoopInfo",
    "seed_dominance_frontiers", "seed_postorder", "seed_predecessors_map",
    "seed_reachable_blocks", "seed_reverse_postorder", "seed_substrate",
]
