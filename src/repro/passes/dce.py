"""Dead code elimination passes: dce and adce."""

from __future__ import annotations

from ..ir import Branch, CondBranch, Function, Module, remove_unreachable_blocks
from .analysis import PRESERVE_ALL
from .pass_manager import FunctionPass, register_pass
from .utils import is_trivially_dead


def eliminate_dead_code(function: Function) -> bool:
    """Iteratively remove instructions with no users and no side effects."""
    changed = False
    progress = True
    while progress:
        progress = False
        for block in function.blocks:
            for inst in list(block.instructions):
                if is_trivially_dead(inst):
                    inst.erase()
                    progress = True
                    changed = True
    return changed


@register_pass
class DCE(FunctionPass):
    """Classic dead-code elimination."""

    name = "dce"
    module_independent = True
    description = "Remove side-effect-free instructions whose results are unused"
    preserves = PRESERVE_ALL  # terminators are never trivially dead

    def run_on_function(self, function: Function, module: Module) -> bool:
        return eliminate_dead_code(function)


@register_pass
class ADCE(FunctionPass):
    """Aggressive DCE: dead instructions, unreachable blocks and degenerate branches."""

    name = "adce"
    module_independent = True
    description = "Aggressive dead-code elimination"

    def run_on_function(self, function: Function, module: Module) -> bool:
        changed = eliminate_dead_code(function)
        changed |= remove_unreachable_blocks(function) > 0
        # Conditional branches whose two targets coincide become unconditional.
        for block in function.blocks:
            term = block.terminator
            if isinstance(term, CondBranch) and term.true_target is term.false_target:
                target = term.true_target
                # A phi in the target may have two entries for this block; they
                # must agree for the rewrite to be sound.
                entries_agree = True
                for phi in target.phis():
                    values = [v for v, b in phi.incoming if b is block]
                    if len(set(map(id, values))) > 1:
                        entries_agree = False
                        break
                if not entries_agree:
                    continue
                for phi in target.phis():
                    blocks_seen = 0
                    for value, pred in list(phi.incoming):
                        if pred is block:
                            blocks_seen += 1
                            if blocks_seen > 1:
                                phi.remove_incoming(block)
                term.erase()
                block.append(Branch(target))
                changed = True
        changed |= eliminate_dead_code(function)
        return changed
