"""mem2reg: promote stack slots to SSA registers.

Implements the classic SSA-construction algorithm: phi placement at iterated
dominance frontiers followed by a renaming walk over the dominator tree.
This is the pass every optimization level runs first; individual passes in
the study instead operate directly on the alloca-heavy -O0-style IR, exactly
as the paper applies single LLVM passes to ``mir-opt-level=0`` output.
"""

from __future__ import annotations

from typing import Optional

from ..ir import (
    Alloca, BasicBlock, DominatorTree, Function, Load, Module, Phi, Store,
    UndefValue, dominance_frontiers, remove_unreachable_blocks, I32,
)
from .analysis import PRESERVE_ALL, AnalysisManager
from .pass_manager import FunctionPass, register_pass


def promotable_allocas(function: Function) -> list[Alloca]:
    """Scalar allocas whose address never escapes (only direct loads/stores)."""
    result = []
    for block in function.blocks:
        for inst in block.instructions:
            if not isinstance(inst, Alloca) or inst.count != 1:
                continue
            ok = True
            for user in inst.users:
                if isinstance(user, Load) and user.pointer is inst:
                    continue
                if isinstance(user, Store) and user.pointer is inst and user.value is not inst:
                    continue
                ok = False
                break
            if ok:
                result.append(inst)
    return result


def promote_allocas(function: Function, allocas: list[Alloca],
                    analysis: Optional[AnalysisManager] = None) -> bool:
    """Promote the given allocas to SSA values.  Returns True if any changed.

    The unreachable-block sweep happens *before* the analyses are requested,
    so the dominator tree and frontiers computed here describe the function's
    final CFG (everything after is phi/load/store surgery).
    """
    if not allocas:
        return False
    remove_unreachable_blocks(function)
    allocas = [a for a in allocas if a.parent is not None]
    if not allocas:
        return False

    if analysis is not None:
        domtree = analysis.domtree(function)
        frontiers = analysis.frontiers(function)
    else:
        domtree = DominatorTree(function)
        frontiers = dominance_frontiers(function, domtree)
    alloca_set = set(allocas)

    # 1. Place phi nodes at the iterated dominance frontier of every store.
    phi_for: dict[tuple[BasicBlock, Alloca], Phi] = {}
    for alloca in allocas:
        # Insertion-ordered (use-list order) so phi placement is deterministic.
        def_blocks = dict.fromkeys(u.parent for u in alloca.users
                                   if isinstance(u, Store) and u.parent is not None)
        worklist = list(def_blocks)
        placed: set[BasicBlock] = set()
        while worklist:
            block = worklist.pop()
            for frontier_block in frontiers.get(block, ()):
                if frontier_block in placed:
                    continue
                placed.add(frontier_block)
                phi = Phi(I32, f"{alloca.name}.phi")
                frontier_block.insert(0, phi)
                phi_for[(frontier_block, alloca)] = phi
                if frontier_block not in def_blocks:
                    worklist.append(frontier_block)

    # 2. Rename along the dominator tree.
    undef = UndefValue(I32)

    def rename(block: BasicBlock, incoming: dict[Alloca, object]) -> None:
        incoming = dict(incoming)
        for inst in list(block.instructions):
            if isinstance(inst, Phi):
                for alloca in allocas:
                    if phi_for.get((block, alloca)) is inst:
                        incoming[alloca] = inst
                        break
                continue
            if isinstance(inst, Load) and inst.pointer in alloca_set:
                value = incoming.get(inst.pointer, undef)  # type: ignore[arg-type]
                inst.replace_all_uses_with(value)  # type: ignore[arg-type]
                inst.erase()
            elif isinstance(inst, Store) and inst.pointer in alloca_set:
                incoming[inst.pointer] = inst.value  # type: ignore[index]
                inst.erase()

        for successor in block.successors:
            for alloca in allocas:
                phi = phi_for.get((successor, alloca))
                if phi is not None:
                    phi.add_incoming(incoming.get(alloca, undef), block)  # type: ignore[arg-type]

        for child in domtree.children(block):
            rename(child, incoming)

    # Iterative driver to avoid Python recursion limits on deep CFGs.
    import sys
    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, 10_000))
    try:
        rename(function.entry_block, {})
    finally:
        sys.setrecursionlimit(old_limit)

    # 3. Remove the now-dead allocas and any phis that only feed themselves.
    for alloca in allocas:
        if not alloca.users and alloca.parent is not None:
            alloca.erase()
    _prune_trivial_phis(function)
    return True


def _prune_trivial_phis(function: Function) -> None:
    """Remove phis whose incoming values are all identical (or the phi itself)."""
    changed = True
    while changed:
        changed = False
        for block in function.blocks:
            for phi in list(block.phis()):
                values = {v for v in phi.operands if v is not phi}
                if len(values) == 1:
                    replacement = values.pop()
                    phi.replace_all_uses_with(replacement)
                    phi.erase()
                    changed = True
                elif not values:
                    phi.erase()
                    changed = True


@register_pass
class Mem2Reg(FunctionPass):
    """Promote memory to registers (SSA construction)."""

    name = "mem2reg"
    module_independent = True
    description = "Promote alloca'd scalars into SSA registers"
    # The only CFG mutation (the unreachable-block sweep) happens before the
    # analyses are requested; the results cached during the pass therefore
    # describe the final CFG, and the version safety net covers the sweep.
    preserves = PRESERVE_ALL

    def run_on_function(self, function: Function, module: Module) -> bool:
        return promote_allocas(function, promotable_allocas(function),
                               analysis=self.analysis)
