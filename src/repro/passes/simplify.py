"""Peephole passes: instsimplify and instcombine.

``instsimplify`` only folds instructions into existing values or constants.
``instcombine`` additionally *rewrites* instructions into cheaper forms; its
most consequential rewrite for this study is strength reduction of division
by a power of two into the shift/add sequence of Figure 2a — profitable on
CPUs where division is slow, counterproductive on zkVMs where every
instruction has near-uniform cost.  The zkVM-aware configuration disables
that expansion (Change Set 1/2 of the paper).
"""

from __future__ import annotations

from typing import Optional

from ..ir import (
    BinaryOp, Cast, Constant, Function, GEP, ICmp, Instruction, Module, Phi,
    Select, Value, I1, I32,
)
from .analysis import PRESERVE_ALL
from .pass_manager import FunctionPass, register_pass
from .utils import (
    constant_value, fold_binary, fold_icmp, is_power_of_two, log2_exact,
    replace_and_erase, to_signed,
)


def simplify_instruction(inst: Instruction) -> Optional[Value]:
    """Return an existing value or constant equivalent to ``inst``, or None."""
    if isinstance(inst, BinaryOp):
        return _simplify_binop(inst)
    if isinstance(inst, ICmp):
        return _simplify_icmp(inst)
    if isinstance(inst, Select):
        return _simplify_select(inst)
    if isinstance(inst, Cast):
        return _simplify_cast(inst)
    if isinstance(inst, GEP):
        index = constant_value(inst.index)
        if index == 0:
            return inst.base
    if isinstance(inst, Phi):
        values = {v for v in inst.operands if v is not inst}
        if len(values) == 1:
            return values.pop()
    return None


def _simplify_binop(inst: BinaryOp) -> Optional[Value]:
    lhs, rhs = inst.lhs, inst.rhs
    clhs, crhs = constant_value(lhs), constant_value(rhs)
    op = inst.opcode

    if clhs is not None and crhs is not None:
        return Constant(fold_binary(op, clhs, crhs), I32)

    # Identities with a constant on either side.
    if op == "add":
        if crhs == 0:
            return lhs
        if clhs == 0:
            return rhs
    elif op == "sub":
        if crhs == 0:
            return lhs
        if lhs is rhs:
            return Constant(0)
    elif op == "mul":
        if crhs == 1:
            return lhs
        if clhs == 1:
            return rhs
        if crhs == 0 or clhs == 0:
            return Constant(0)
    elif op in ("sdiv", "udiv"):
        if crhs == 1:
            return lhs
    elif op in ("srem", "urem"):
        if crhs == 1:
            return Constant(0)
    elif op == "and":
        if crhs == 0 or clhs == 0:
            return Constant(0)
        if crhs == 0xFFFFFFFF:
            return lhs
        if clhs == 0xFFFFFFFF:
            return rhs
        if lhs is rhs:
            return lhs
    elif op == "or":
        if crhs == 0:
            return lhs
        if clhs == 0:
            return rhs
        if lhs is rhs:
            return lhs
    elif op == "xor":
        if crhs == 0:
            return lhs
        if clhs == 0:
            return rhs
        if lhs is rhs:
            return Constant(0)
    elif op in ("shl", "lshr", "ashr"):
        if crhs == 0:
            return lhs
        if clhs == 0:
            return Constant(0)
    return None


def _simplify_icmp(inst: ICmp) -> Optional[Value]:
    clhs, crhs = constant_value(inst.lhs), constant_value(inst.rhs)
    if clhs is not None and crhs is not None:
        return Constant(fold_icmp(inst.predicate, clhs, crhs), I1)
    if inst.lhs is inst.rhs:
        always_true = inst.predicate in ("eq", "sle", "sge", "ule", "uge")
        return Constant(int(always_true), I1)
    return None


def _simplify_select(inst: Select) -> Optional[Value]:
    cond = constant_value(inst.condition)
    if cond is not None:
        return inst.true_value if cond & 1 else inst.false_value
    if inst.true_value is inst.false_value:
        return inst.true_value
    return None


def _simplify_cast(inst: Cast) -> Optional[Value]:
    value = constant_value(inst.value)
    if value is None:
        return None
    bits = inst.type.bits  # type: ignore[attr-defined]
    if inst.opcode == "trunc":
        return Constant(value & ((1 << bits) - 1), inst.type)  # type: ignore[arg-type]
    if inst.opcode == "zext":
        return Constant(value, inst.type)  # type: ignore[arg-type]
    # sext from i1/i8/i16.
    src_bits = getattr(inst.value.type, "bits", 32)
    if value >= (1 << (src_bits - 1)):
        value -= 1 << src_bits
    return Constant(value, inst.type)  # type: ignore[arg-type]


def run_instsimplify(function: Function, only_blocks=None) -> bool:
    """Apply :func:`simplify_instruction` to a fixpoint."""
    changed = False
    progress = True
    rounds = 0
    while progress and rounds < 8:
        progress = False
        rounds += 1
        for block in function.blocks:
            if only_blocks is not None and block not in only_blocks:
                continue
            for inst in list(block.instructions):
                replacement = simplify_instruction(inst)
                if replacement is not None and replacement is not inst:
                    replace_and_erase(inst, replacement)
                    progress = True
                    changed = True
    return changed


@register_pass
class InstSimplify(FunctionPass):
    """Fold instructions into existing values; never creates new instructions."""

    name = "instsimplify"
    module_independent = True
    description = "Remove redundant instructions by local simplification"
    preserves = PRESERVE_ALL  # folds instructions into existing values only

    def run_on_function(self, function: Function, module: Module) -> bool:
        return run_instsimplify(function)


# ---------------------------------------------------------------------------
# instcombine
# ---------------------------------------------------------------------------
class _Combiner:
    """One instcombine visit: may replace an instruction with new instructions."""

    def __init__(self, config):
        self.config = config

    def combine(self, inst: Instruction) -> bool:
        """Try to rewrite ``inst``.  Returns True if the IR changed."""
        simplified = simplify_instruction(inst)
        if simplified is not None and simplified is not inst:
            replace_and_erase(inst, simplified)
            return True
        if isinstance(inst, BinaryOp):
            return self._combine_binop(inst)
        if isinstance(inst, ICmp):
            return self._combine_icmp(inst)
        if isinstance(inst, Select):
            return self._combine_select(inst)
        return False

    # -- helpers ------------------------------------------------------------
    @staticmethod
    def _insert_before(anchor: Instruction, new: Instruction) -> Instruction:
        block = anchor.parent
        block.insert(block.instructions.index(anchor), new)
        return new

    def _combine_binop(self, inst: BinaryOp) -> bool:
        # Canonicalize: constants go to the right for commutative operations.
        if inst.is_commutative and isinstance(inst.lhs, Constant) \
                and not isinstance(inst.rhs, Constant):
            lhs, rhs = inst.lhs, inst.rhs
            inst.set_operands([rhs, lhs])
            return True

        crhs = constant_value(inst.rhs)
        op = inst.opcode

        # Reassociate (x op c1) op c2 -> x op (c1 op c2) for add/mul/and/or/xor.
        if crhs is not None and isinstance(inst.lhs, BinaryOp) \
                and inst.lhs.opcode == op and op in ("add", "mul", "and", "or", "xor"):
            inner = inst.lhs
            c_inner = constant_value(inner.rhs)
            if c_inner is not None and len(inner.users) == 1:
                folded = Constant(fold_binary(op, c_inner, crhs))
                new = BinaryOp(op, inner.lhs, folded, inst.name)
                self._insert_before(inst, new)
                replace_and_erase(inst, new)
                return True

        # x + x -> x << 1
        if op == "add" and inst.lhs is inst.rhs:
            new = BinaryOp("shl", inst.lhs, Constant(1), inst.name)
            self._insert_before(inst, new)
            replace_and_erase(inst, new)
            return True

        if crhs is None:
            return False

        # Multiplication by a power of two -> shift.
        if op == "mul" and is_power_of_two(crhs):
            new = BinaryOp("shl", inst.lhs, Constant(log2_exact(crhs)), inst.name)
            self._insert_before(inst, new)
            replace_and_erase(inst, new)
            return True

        # Unsigned division / remainder by a power of two -> single shift / mask.
        if op == "udiv" and is_power_of_two(crhs):
            new = BinaryOp("lshr", inst.lhs, Constant(log2_exact(crhs)), inst.name)
            self._insert_before(inst, new)
            replace_and_erase(inst, new)
            return True
        if op == "urem" and is_power_of_two(crhs):
            new = BinaryOp("and", inst.lhs, Constant(crhs - 1), inst.name)
            self._insert_before(inst, new)
            replace_and_erase(inst, new)
            return True

        # Signed division by a power of two: the Figure 2a shift/add expansion.
        # Beneficial on CPUs (division is slow), harmful on zkVMs (4 uniform-cost
        # instructions replace 1).  Disabled by the zkVM-aware cost model.
        if op == "sdiv" and is_power_of_two(crhs) and crhs > 1 \
                and self.config.expand_div_by_constant and not self.config.zkvm_aware:
            k = log2_exact(crhs)
            sign = self._insert_before(inst, BinaryOp("ashr", inst.lhs, Constant(31), "div.sign"))
            bias = self._insert_before(inst, BinaryOp("lshr", sign, Constant(32 - k), "div.bias"))
            adjusted = self._insert_before(inst, BinaryOp("add", inst.lhs, bias, "div.adj"))
            new = BinaryOp("ashr", adjusted, Constant(k), inst.name)
            self._insert_before(inst, new)
            replace_and_erase(inst, new)
            return True

        # Signed remainder by a power of two: expanded similarly on CPUs.
        if op == "srem" and is_power_of_two(crhs) and crhs > 1 \
                and self.config.expand_div_by_constant and not self.config.zkvm_aware:
            k = log2_exact(crhs)
            sign = self._insert_before(inst, BinaryOp("ashr", inst.lhs, Constant(31), "rem.sign"))
            bias = self._insert_before(inst, BinaryOp("lshr", sign, Constant(32 - k), "rem.bias"))
            adjusted = self._insert_before(inst, BinaryOp("add", inst.lhs, bias, "rem.adj"))
            masked = self._insert_before(inst, BinaryOp("and", adjusted, Constant(~(crhs - 1)), "rem.mask"))
            new = BinaryOp("sub", inst.lhs, masked, inst.name)
            self._insert_before(inst, new)
            replace_and_erase(inst, new)
            return True

        return False

    def _combine_icmp(self, inst: ICmp) -> bool:
        # icmp ne (zext i1 %c), 0  ->  %c      (the frontend's "tobool" pattern)
        # icmp eq (zext i1 %c), 0  ->  icmp eq %c, false
        if isinstance(inst.lhs, Cast) and inst.lhs.opcode == "zext" \
                and inst.lhs.value.type is I1 and constant_value(inst.rhs) == 0:
            source = inst.lhs.value
            if inst.predicate == "ne":
                replace_and_erase(inst, source)
                return True
            if inst.predicate == "eq":
                new = ICmp("eq", source, Constant(0, I1), inst.name)
                self._insert_before(inst, new)
                replace_and_erase(inst, new)
                return True
        return False

    def _combine_select(self, inst: Select) -> bool:
        # select %c, 1, 0 -> zext %c ; select %c, 0, 1 -> zext (icmp eq %c, 0)
        tv, fv = constant_value(inst.true_value), constant_value(inst.false_value)
        if inst.condition.type is I1 and tv == 1 and fv == 0:
            new = Cast("zext", inst.condition, I32, inst.name)
            self._insert_before(inst, new)
            replace_and_erase(inst, new)
            return True
        return False


@register_pass
class InstCombine(FunctionPass):
    """Combine and canonicalize instructions (includes strength reduction)."""

    name = "instcombine"
    module_independent = True
    description = "Algebraic rewrites, canonicalization and strength reduction"
    preserves = PRESERVE_ALL  # rewrites non-terminator instructions in place

    def run_on_function(self, function: Function, module: Module) -> bool:
        combiner = _Combiner(self.config)
        changed = False
        progress = True
        rounds = 0
        while progress and rounds < 8:
            progress = False
            rounds += 1
            for block in function.blocks:
                for inst in list(block.instructions):
                    if inst.parent is None:
                        continue
                    if combiner.combine(inst):
                        progress = True
                        changed = True
        return changed
