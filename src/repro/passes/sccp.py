"""Sparse conditional constant propagation (sccp) and its interprocedural
variant (ipsccp)."""

from __future__ import annotations

from typing import Optional

from ..ir import (
    Argument, BasicBlock, BinaryOp, Branch, Call, Cast, CondBranch, Constant,
    Function, ICmp, Instruction, Load, Module, Phi, Ret, Select, Value, I1, I32,
    remove_unreachable_blocks,
)
from .pass_manager import FunctionPass, ModulePass, register_pass
from .simplify import simplify_instruction
from .utils import constant_value, fold_binary, fold_icmp

# Lattice: None = unknown (bottom), int = constant, "over" = overdefined (top).
_OVER = "over"


class _SCCPSolver:
    """Standard SCCP over SSA values with executable-edge tracking."""

    def __init__(self, function: Function, argument_values: Optional[dict] = None):
        self.function = function
        self.lattice: dict[Value, object] = {}
        self.executable_blocks: set[BasicBlock] = set()
        self.edge_worklist: list[tuple[Optional[BasicBlock], BasicBlock]] = []
        self.value_worklist: list[Instruction] = []
        if argument_values:
            for arg, value in argument_values.items():
                self.lattice[arg] = value

    # -- lattice helpers -------------------------------------------------------
    def value_of(self, value: Value):
        if isinstance(value, Constant):
            return value.value
        if isinstance(value, Argument):
            return self.lattice.get(value, _OVER)
        if isinstance(value, Instruction):
            return self.lattice.get(value)
        return _OVER

    def mark(self, inst: Instruction, new_value) -> None:
        old = self.lattice.get(inst)
        if old == new_value:
            return
        if old == _OVER:
            return
        self.lattice[inst] = new_value if old is None or old == new_value else _OVER
        for user in inst.users:
            if isinstance(user, Instruction) and user.parent is not None \
                    and user.parent in self.executable_blocks:
                self.value_worklist.append(user)

    # -- solving ------------------------------------------------------------------
    def solve(self) -> None:
        self.edge_worklist.append((None, self.function.entry_block))
        while self.edge_worklist or self.value_worklist:
            while self.edge_worklist:
                _, target = self.edge_worklist.pop()
                if target in self.executable_blocks:
                    # Re-evaluate phis: a new incoming edge may change them.
                    for phi in target.phis():
                        self.value_worklist.append(phi)
                    continue
                self.executable_blocks.add(target)
                for inst in target.instructions:
                    self.visit(inst)
            while self.value_worklist:
                inst = self.value_worklist.pop()
                if inst.parent is not None and inst.parent in self.executable_blocks:
                    self.visit(inst)

    def visit(self, inst: Instruction) -> None:
        # Ordered by visit frequency (binops/compares dominate -O0-style IR).
        if isinstance(inst, BinaryOp):
            lhs, rhs = self.value_of(inst.lhs), self.value_of(inst.rhs)
            if lhs == _OVER or rhs == _OVER:
                self.mark(inst, _OVER)
            elif lhs is not None and rhs is not None:
                self.mark(inst, fold_binary(inst.opcode, lhs, rhs))
        elif isinstance(inst, ICmp):
            lhs, rhs = self.value_of(inst.lhs), self.value_of(inst.rhs)
            if lhs == _OVER or rhs == _OVER:
                self.mark(inst, _OVER)
            elif lhs is not None and rhs is not None:
                self.mark(inst, fold_icmp(inst.predicate, lhs, rhs))
        elif isinstance(inst, Select):
            cond = self.value_of(inst.condition)
            if cond == _OVER:
                self.mark(inst, _OVER)
            elif cond is not None:
                chosen = inst.true_value if cond & 1 else inst.false_value
                value = self.value_of(chosen)
                self.mark(inst, value if value is not None else None)
        elif isinstance(inst, Cast):
            value = self.value_of(inst.value)
            if value == _OVER:
                self.mark(inst, _OVER)
            elif value is not None:
                bits = getattr(inst.type, "bits", 32)
                if inst.opcode in ("zext", "trunc"):
                    self.mark(inst, value & ((1 << bits) - 1))
                else:  # sext
                    src_bits = getattr(inst.value.type, "bits", 32)
                    value &= (1 << src_bits) - 1
                    if value >= (1 << (src_bits - 1)):
                        value -= 1 << src_bits
                    self.mark(inst, value & 0xFFFFFFFF)
        elif isinstance(inst, Phi):
            self.visit_phi(inst)
        elif isinstance(inst, (Load, Call)):
            if inst.has_result:
                self.mark(inst, _OVER)
        elif isinstance(inst, CondBranch):
            cond = self.value_of(inst.condition)
            if cond == _OVER or cond is None:
                self.edge_worklist.append((inst.parent, inst.true_target))
                self.edge_worklist.append((inst.parent, inst.false_target))
            else:
                target = inst.true_target if cond & 1 else inst.false_target
                self.edge_worklist.append((inst.parent, target))
        elif isinstance(inst, Branch):
            self.edge_worklist.append((inst.parent, inst.target))

    def visit_phi(self, phi: Phi) -> None:
        result = None
        for value, block in phi.incoming:
            if block not in self.executable_blocks:
                continue
            incoming = self.value_of(value)
            if incoming == _OVER:
                result = _OVER
                break
            if incoming is None:
                continue
            if result is None:
                result = incoming
            elif result != incoming:
                result = _OVER
                break
        if result is not None:
            self.mark(phi, result)


def apply_sccp(function: Function, argument_values: Optional[dict] = None) -> bool:
    """Run the SCCP solver and rewrite the function with its conclusions."""
    if not function.blocks:
        return False
    solver = _SCCPSolver(function, argument_values)
    solver.solve()
    changed = False

    # Replace instructions proven constant.
    for block in list(function.blocks):
        if block not in solver.executable_blocks:
            continue
        for inst in list(block.instructions):
            value = solver.lattice.get(inst)
            if value is None or value == _OVER or not inst.has_result:
                continue
            if isinstance(inst, (Load, Call)):
                continue
            constant = Constant(int(value), I1 if inst.type is I1 else I32)
            inst.replace_all_uses_with(constant)
            if not inst.has_side_effects:
                inst.erase()
                changed = True

    # Fold conditional branches whose condition is now a constant.
    for block in list(function.blocks):
        term = block.terminator
        if isinstance(term, CondBranch):
            cond = constant_value(term.condition)
            if cond is None:
                continue
            taken = term.true_target if cond & 1 else term.false_target
            not_taken = term.false_target if cond & 1 else term.true_target
            if taken is not not_taken:
                for phi in not_taken.phis():
                    phi.remove_incoming(block)
            term.erase()
            block.append(Branch(taken))
            changed = True

    changed |= remove_unreachable_blocks(function) > 0
    return changed


@register_pass
class SCCP(FunctionPass):
    """Sparse conditional constant propagation."""

    name = "sccp"
    module_independent = True
    description = "Constant propagation with executable-edge tracking"

    def run_on_function(self, function: Function, module: Module) -> bool:
        return apply_sccp(function)


@register_pass
class IPSCCP(ModulePass):
    """Interprocedural SCCP: propagates constant arguments and return values."""

    name = "ipsccp"
    description = "Interprocedural sparse conditional constant propagation"
    tracks_modified = True  # reports the exact functions it rewrote

    def run(self, module: Module) -> bool:
        changed = False
        # 1. Arguments that receive the same constant at every call site.
        call_sites: dict[str, list[Call]] = {}
        for function in module.defined_functions():
            for inst in function.instructions():
                if isinstance(inst, Call):
                    call_sites.setdefault(inst.callee, []).append(inst)

        argument_constants: dict[Function, dict] = {}
        for function in module.defined_functions():
            if function.name == "main":
                continue
            sites = call_sites.get(function.name, [])
            if not sites:
                continue
            constants = {}
            for index, argument in enumerate(function.arguments):
                values = {constant_value(site.args[index]) for site in sites
                          if index < len(site.args)}
                if len(values) == 1:
                    value = values.pop()
                    if value is not None:
                        constants[argument] = value
            if constants:
                argument_constants[function] = constants
                for argument, value in constants.items():
                    argument.replace_all_uses_with(Constant(value))
                    self.note_modified(function)
                    changed = True

        # 2. Per-function SCCP, seeded with the propagated argument constants.
        for function in module.defined_functions():
            if apply_sccp(function, argument_constants.get(function)):
                self.note_modified(function)
                changed = True

        # 3. Functions that provably return a single constant.
        for function in module.defined_functions():
            return_values = set()
            for inst in function.instructions():
                if isinstance(inst, Ret) and inst.value is not None:
                    return_values.add(constant_value(inst.value))
            if len(return_values) == 1:
                value = return_values.pop()
                if value is None:
                    continue
                for site in call_sites.get(function.name, []):
                    if site.users:
                        # The rewrite lands in the functions that *use* the
                        # call result (normally the site's own function).
                        for user in site.users:
                            if isinstance(user, Instruction) and user.parent is not None:
                                self.note_modified(user.parent.parent)
                        site.replace_all_uses_with(Constant(value))
                        if site.parent is not None:
                            self.note_modified(site.parent.parent)
                        changed = True
        return changed
