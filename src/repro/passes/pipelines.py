"""Preset optimization pipelines: -O0, -O1, -O2, -O3, -Os, -Oz.

The pass orderings follow the spirit of LLVM's default pipelines: SSA
construction first, then scalar simplification, inlining, loop optimizations,
redundancy elimination and final clean-ups.  The size-oriented levels use
lower inlining/unrolling thresholds.
"""

from __future__ import annotations

from .pass_manager import PassConfig, PassManager

# The unoptimized reference point used throughout the paper's study.
BASELINE: list[str] = []

O0 = [
    "always-inline",
    "dce",
]

O1 = [
    "mem2reg",
    "instcombine",
    "simplifycfg",
    "sroa",
    "early-cse",
    "sccp",
    "inline",
    "instcombine",
    "simplifycfg",
    "dce",
]

O2 = [
    "mem2reg",
    "sroa",
    "instcombine",
    "simplifycfg",
    "ipsccp",
    "inline",
    "instcombine",
    "jump-threading",
    "simplifycfg",
    "tailcall",
    "early-cse",
    "loop-rotate",
    "licm",
    "indvars",
    "loop-idiom",
    "loop-deletion",
    "loop-unroll",
    "gvn",
    "sccp",
    "instcombine",
    "mldst-motion",
    "sink",
    "adce",
    "simplifycfg",
    "instcombine",
]

O3 = [
    "mem2reg",
    "sroa",
    "instcombine",
    "simplifycfg",
    "ipsccp",
    "attributor",
    "inline",
    "instcombine",
    "jump-threading",
    "simplifycfg",
    "tailcall",
    "early-cse",
    "loop-rotate",
    "licm",
    "simple-loop-unswitch",
    "indvars",
    "loop-idiom",
    "loop-deletion",
    "loop-unroll",
    "gvn",
    "sccp",
    "instcombine",
    "mldst-motion",
    "sink",
    "speculative-execution",
    "adce",
    "simplifycfg",
    "instcombine",
    "dce",
]

OS = [name for name in O2 if name not in ("loop-unroll",)]
OZ = [name for name in OS if name not in ("loop-rotate", "loop-idiom")]

OPTIMIZATION_LEVELS: dict[str, list[str]] = {
    "baseline": BASELINE,
    "-O0": O0,
    "-O1": O1,
    "-O2": O2,
    "-O3": O3,
    "-Os": OS,
    "-Oz": OZ,
}


def config_for_level(level: str, zkvm_aware: bool = False) -> PassConfig:
    """The pass configuration (thresholds) used by a preset level."""
    config = PassConfig(zkvm_aware=zkvm_aware)
    if level == "-O3":
        config = config.with_overrides(
            inline_threshold=325, unroll_threshold=300, unroll_full_max_trip_count=64)
    elif level == "-O1":
        config = config.with_overrides(inline_threshold=45)
    elif level == "-Os":
        config = config.with_overrides(inline_threshold=50, unroll_threshold=0)
    elif level == "-Oz":
        config = config.with_overrides(inline_threshold=25, unroll_threshold=0,
                                       fold_branch_to_select_threshold=1)
    if zkvm_aware:
        config = apply_zkvm_aware_overrides(config)
    return config


def apply_zkvm_aware_overrides(config: PassConfig) -> PassConfig:
    """Change Sets 1-3 (Section 6.1): zkVM-aware cost model and heuristics."""
    return config.with_overrides(
        zkvm_aware=True,
        # Change set 1/2: instruction-count-driven inlining (paper uses 4328).
        inline_threshold=4328,
        inline_call_penalty=40,
        always_inline_threshold=60,
        # Unrolling only when it reduces executed instructions; allow more of it.
        unroll_threshold=600,
        unroll_full_max_trip_count=64,
        # Do not expand division into shift/add sequences (uniform cost model).
        expand_div_by_constant=False,
        # Be conservative about evaluating both sides of a branch.
        fold_branch_to_select_threshold=1,
    )


def pipeline_for_level(level: str, zkvm_aware: bool = False) -> PassManager:
    """Build a ready-to-run pass manager for a preset optimization level."""
    if level not in OPTIMIZATION_LEVELS:
        raise KeyError(f"unknown optimization level: {level}")
    names = list(OPTIMIZATION_LEVELS[level])
    if zkvm_aware:
        # Change set 3: drop passes that rely on hardware features zkVMs lack.
        names = [n for n in names if n not in ("speculative-execution",)]
    return PassManager(names, config_for_level(level, zkvm_aware))
