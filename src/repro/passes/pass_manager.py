"""Pass infrastructure: the pass registry, configuration and the pass manager.

Mirrors the way the paper drives LLVM: a *profile* is an ordered list of pass
names (plus numeric options such as ``inline-threshold``), applied to the
unoptimized module produced by the frontend.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, Optional

from ..ir import Function, Module, verify_module


@dataclass
class PassConfig:
    """Tunable knobs shared by the passes.

    The defaults mirror LLVM's CPU-oriented tuning.  The zkVM-aware
    configuration from Section 6.1 of the paper overrides a subset of them
    (see :mod:`repro.zkvm_aware`).
    """

    # Inlining (LLVM default threshold is 225; the paper raises it to 4328).
    inline_threshold: int = 225
    inline_call_penalty: int = 25
    always_inline_threshold: int = 30

    # Loop unrolling.
    unroll_threshold: int = 150
    unroll_max_count: int = 8
    unroll_full_max_trip_count: int = 32

    # simplifycfg: convert two-armed diamonds into selects when each arm has at
    # most this many speculatable instructions (CPU tuning favours this because
    # it removes branches; zkVMs pay for both arms).
    fold_branch_to_select_threshold: int = 2

    # Strength reduction of division by constants into shift/add sequences.
    expand_div_by_constant: bool = True

    # Jump threading block-duplication threshold.
    jump_threading_threshold: int = 6

    # zkVM-aware mode (Change Sets 1-3): passes consult this to pick
    # instruction-count-driven heuristics instead of hardware-centric ones.
    zkvm_aware: bool = False

    def with_overrides(self, **kwargs) -> "PassConfig":
        return replace(self, **kwargs)


class Pass:
    """Base class of every optimization pass."""

    name = "<abstract>"
    description = ""

    def __init__(self, config: Optional[PassConfig] = None):
        self.config = config or PassConfig()

    def run(self, module: Module) -> bool:
        """Run on a module; return True if the IR changed."""
        raise NotImplementedError


class FunctionPass(Pass):
    """A pass that runs independently on every defined function."""

    def run(self, module: Module) -> bool:
        changed = False
        for function in module.defined_functions():
            changed |= bool(self.run_on_function(function, module))
        return changed

    def run_on_function(self, function: Function, module: Module) -> bool:
        raise NotImplementedError


class ModulePass(Pass):
    """A pass that needs a whole-module view (inlining, ipsccp, ...)."""


# -- registry -----------------------------------------------------------------
_REGISTRY: dict[str, type[Pass]] = {}


def register_pass(cls: type[Pass]) -> type[Pass]:
    """Class decorator registering a pass under its ``name``."""
    if cls.name in _REGISTRY:
        raise ValueError(f"duplicate pass name: {cls.name}")
    _REGISTRY[cls.name] = cls
    return cls


def available_passes() -> list[str]:
    """Names of all registered passes, sorted."""
    _ensure_loaded()
    return sorted(_REGISTRY.keys())


def get_pass(name: str, config: Optional[PassConfig] = None) -> Pass:
    """Instantiate a registered pass by name."""
    _ensure_loaded()
    if name not in _REGISTRY:
        raise KeyError(f"unknown pass: {name}")
    return _REGISTRY[name](config)


def _ensure_loaded() -> None:
    """Import every pass module so registration side effects run."""
    from . import (  # noqa: F401  (imported for side effects)
        cse, dce, inline, jump_threading, loop_extract, loop_passes,
        loop_unroll, mem2reg, misc, reg2mem, sccp, simplify, simplifycfg,
        sroa, tailcall, unswitch,
    )


class PassManager:
    """Runs an ordered sequence of passes over a module."""

    def __init__(self, passes: Iterable[str | Pass] = (),
                 config: Optional[PassConfig] = None,
                 verify_each: bool = False):
        self.config = config or PassConfig()
        self.verify_each = verify_each
        self.passes: list[Pass] = []
        for item in passes:
            self.add(item)

    def add(self, item: str | Pass) -> "PassManager":
        if isinstance(item, str):
            item = get_pass(item, self.config)
        self.passes.append(item)
        return self

    def run(self, module: Module) -> bool:
        """Run all passes in order.  Returns True if any pass changed the IR."""
        changed = False
        for pass_ in self.passes:
            try:
                changed |= bool(pass_.run(module))
            except Exception as error:  # pragma: no cover - defensive
                raise RuntimeError(f"pass '{pass_.name}' failed: {error}") from error
            if self.verify_each:
                verify_module(module)
        return changed

    @property
    def pass_names(self) -> list[str]:
        return [p.name for p in self.passes]


def run_passes(module: Module, names: Iterable[str],
               config: Optional[PassConfig] = None,
               verify_each: bool = False) -> Module:
    """Clone ``module``, run the named passes on the clone, and return it."""
    cloned = module.clone()
    PassManager(names, config, verify_each).run(cloned)
    return cloned
