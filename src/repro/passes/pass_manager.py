"""Pass infrastructure: the pass registry, configuration and the pass manager.

Mirrors the way the paper drives LLVM: a *profile* is an ordered list of pass
names (plus numeric options such as ``inline-threshold``), applied to the
unoptimized module produced by the frontend.

Passes no longer construct :class:`~repro.ir.dominators.DominatorTree` /
:class:`~repro.ir.loops.LoopInfo` themselves — they request them from the
pipeline's :class:`~repro.passes.analysis.AnalysisManager` (``self.analysis``)
and declare which analyses they preserve via ``preserves``; see
:mod:`repro.passes.analysis` for the invalidation rules.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, Optional

from ..ir import Function, Module, verify_module
from ..ir.analysis_cache import cfg_cache_disabled
from .analysis import AnalysisManager, AnalysisStats, PRESERVE_NONE


@dataclass
class PassConfig:
    """Tunable knobs shared by the passes.

    The defaults mirror LLVM's CPU-oriented tuning.  The zkVM-aware
    configuration from Section 6.1 of the paper overrides a subset of them
    (see :mod:`repro.zkvm_aware`).
    """

    # Inlining (LLVM default threshold is 225; the paper raises it to 4328).
    inline_threshold: int = 225
    inline_call_penalty: int = 25
    always_inline_threshold: int = 30

    # Loop unrolling.
    unroll_threshold: int = 150
    unroll_max_count: int = 8
    unroll_full_max_trip_count: int = 32

    # simplifycfg: convert two-armed diamonds into selects when each arm has at
    # most this many speculatable instructions (CPU tuning favours this because
    # it removes branches; zkVMs pay for both arms).
    fold_branch_to_select_threshold: int = 2

    # Strength reduction of division by constants into shift/add sequences.
    expand_div_by_constant: bool = True

    # Jump threading block-duplication threshold.
    jump_threading_threshold: int = 6

    # zkVM-aware mode (Change Sets 1-3): passes consult this to pick
    # instruction-count-driven heuristics instead of hardware-centric ones.
    zkvm_aware: bool = False

    def with_overrides(self, **kwargs) -> "PassConfig":
        return replace(self, **kwargs)


class PassPipelineError(RuntimeError):
    """A pass raised while running; carries the failing pass's context.

    The seed re-wrapped every exception in a bare ``RuntimeError`` that lost
    which pipeline slot and which function were being optimized — exactly the
    context needed to reproduce an autotuner candidate failure.  The original
    exception is chained as ``__cause__``.
    """

    def __init__(self, pass_name: str, pass_index: int,
                 function_name: Optional[str], error: BaseException):
        self.pass_name = pass_name
        self.pass_index = pass_index
        self.function_name = function_name
        where = (f" while optimizing function '{function_name}'"
                 if function_name else "")
        super().__init__(
            f"pass '{pass_name}' (pipeline index {pass_index}) failed{where}: "
            f"{error}")


@dataclass
class PassTiming:
    """Wall time and analysis-cache activity of one pipeline slot."""

    name: str
    index: int
    seconds: float
    changed: bool
    analysis: AnalysisStats = field(default_factory=AnalysisStats)

    def as_dict(self) -> dict:
        return {"name": self.name, "index": self.index,
                "seconds": self.seconds, "changed": self.changed,
                "analysis": self.analysis.as_dict()}


class Pass:
    """Base class of every optimization pass."""

    name = "<abstract>"
    description = ""

    #: Analyses still valid for the functions this pass *modified* (see
    #: :data:`repro.passes.analysis.PRESERVE_ALL` /
    #: :data:`~repro.passes.analysis.PRESERVE_NONE`).  Unmodified functions
    #: keep everything regardless.
    preserves: frozenset[str] = PRESERVE_NONE

    #: Module passes that report the exact functions they modified (via
    #: :meth:`note_modified`) set this, enabling precise invalidation.
    tracks_modified = False

    def __init__(self, config: Optional[PassConfig] = None):
        self.config = config or PassConfig()
        # Standalone pass runs compute analyses fresh per request; the pass
        # manager injects its shared caching manager before each pipeline run.
        self.analysis = AnalysisManager(enabled=False)
        self._modified_functions: Optional[set[Function]] = None

    def run(self, module: Module) -> bool:
        """Run on a module; return True if the IR changed."""
        raise NotImplementedError

    # -- modification reporting (module passes) ----------------------------
    def note_modified(self, function: Optional[Function]) -> None:
        """Record that ``function`` was modified (for precise invalidation)."""
        if function is not None and self._modified_functions is not None:
            self._modified_functions.add(function)

    def begin_tracking(self) -> None:
        self._modified_functions = set() if self.tracks_modified else None

    def take_modified(self) -> Optional[set[Function]]:
        """The functions modified since :meth:`begin_tracking`, or ``None``
        when this pass does not track (callers must then assume *all*)."""
        modified, self._modified_functions = self._modified_functions, None
        return modified


class FunctionPass(Pass):
    """A pass that runs independently on every defined function.

    Handles its own invalidation: after ``run_on_function`` reports a change,
    the non-preserved analyses of exactly that function are dropped.

    Passes whose behaviour depends only on the function they are given (and
    their config) set ``module_independent = True``; the manager then skips
    re-running them on a function whose IR epoch has not moved since the same
    pass last proved itself a no-op there — sound because passes are
    deterministic, and airtight because the no-op record is only written when
    the epoch did not move during the run (a lying ``changed`` flag cannot
    poison it).
    """

    #: True when run_on_function reads nothing outside its function + config
    #: (enables no-op skipping; e.g. ``gvn`` scans the whole module for
    #: global writes and must stay False).
    module_independent = False

    #: The function currently being optimized (error-reporting context).
    current_function: Optional[Function] = None

    def run(self, module: Module) -> bool:
        changed = False
        manager = self.analysis
        skippable = manager.enabled and self.module_independent
        for function in module.defined_functions():
            epoch = function.ir_version
            if skippable:
                key = (self.name, id(self.config), function)
                if manager.noop_epoch(key) == epoch:
                    manager.stats.skipped += 1
                    continue
            self.current_function = function
            version_before = function.cfg_version
            function_changed = bool(self.run_on_function(function, module))
            self.current_function = None
            if function_changed:
                # The managed analyses are pure functions of the block graph;
                # a pass that only touched instructions (version unchanged)
                # preserves all of them regardless of its declaration.
                if function.cfg_version != version_before:
                    self.analysis.invalidate(function, self.preserves)
                changed = True
            if skippable and function.ir_version == epoch:
                manager.record_noop(key, epoch)
        return changed

    def run_on_function(self, function: Function, module: Module) -> bool:
        raise NotImplementedError


class ModulePass(Pass):
    """A pass that needs a whole-module view (inlining, ipsccp, ...)."""


# -- registry -----------------------------------------------------------------
_REGISTRY: dict[str, type[Pass]] = {}


def register_pass(cls: type[Pass]) -> type[Pass]:
    """Class decorator registering a pass under its ``name``."""
    if cls.name in _REGISTRY:
        raise ValueError(f"duplicate pass name: {cls.name}")
    _REGISTRY[cls.name] = cls
    return cls


def available_passes() -> list[str]:
    """Names of all registered passes, sorted."""
    _ensure_loaded()
    return sorted(_REGISTRY.keys())


def get_pass(name: str, config: Optional[PassConfig] = None) -> Pass:
    """Instantiate a registered pass by name."""
    _ensure_loaded()
    if name not in _REGISTRY:
        raise KeyError(f"unknown pass: {name}")
    return _REGISTRY[name](config)


def _ensure_loaded() -> None:
    """Import every pass module so registration side effects run."""
    from . import (  # noqa: F401  (imported for side effects)
        cse, dce, inline, jump_threading, loop_extract, loop_passes,
        loop_unroll, mem2reg, misc, reg2mem, sccp, simplify, simplifycfg,
        sroa, tailcall, unswitch,
    )


class PassManager:
    """Runs an ordered sequence of passes over a module.

    Parameters
    ----------
    analysis_cache:
        ``True`` (default) shares one caching :class:`AnalysisManager` across
        the pipeline, with preserves-driven invalidation between passes.
        ``False`` is the escape hatch: every analysis request — including the
        IR-level CFG metadata — is recomputed from scratch, reproducing the
        seed pass manager for differential testing and benchmarking.
    verify_analyses:
        Debug mode: cross-check every cached analysis against a fresh
        recomputation on each hit and after each pass.
    verify_each:
        Run the IR verifier after every pass.
    seed_baseline:
        Benchmarking mode: like ``analysis_cache=False`` but additionally
        serving every analysis request from the preserved seed
        implementations (:mod:`repro.passes.seed_analysis`), reproducing the
        seed pass manager's full cost model.  Not byte-deterministic.
    """

    def __init__(self, passes: Iterable[str | Pass] = (),
                 config: Optional[PassConfig] = None,
                 verify_each: bool = False,
                 analysis_cache: bool = True,
                 verify_analyses: bool = False,
                 seed_baseline: bool = False):
        self.config = config or PassConfig()
        self.verify_each = verify_each
        self.analysis_cache = analysis_cache and not seed_baseline
        self.verify_analyses = verify_analyses
        self.seed_baseline = seed_baseline
        self.analysis = AnalysisManager(enabled=self.analysis_cache,
                                        verify=verify_analyses,
                                        seed_baseline=seed_baseline)
        #: Per-slot wall time and cache activity of the most recent run.
        self.timings: list[PassTiming] = []
        self.passes: list[Pass] = []
        for item in passes:
            self.add(item)

    def add(self, item: str | Pass) -> "PassManager":
        if isinstance(item, str):
            item = get_pass(item, self.config)
        self.passes.append(item)
        return self

    def run(self, module: Module) -> bool:
        """Run all passes in order.  Returns True if any pass changed the IR."""
        if self.seed_baseline:
            from .seed_analysis import seed_substrate

            with cfg_cache_disabled(), seed_substrate():
                return self._run(module)
        if self.analysis_cache:
            return self._run(module)
        with cfg_cache_disabled():
            return self._run(module)

    def _run(self, module: Module) -> bool:
        changed = False
        manager = self.analysis
        manager.clear()  # never carry analyses from a previous module
        self.timings = []
        for index, pass_ in enumerate(self.passes):
            pass_.analysis = manager
            pass_.begin_tracking()
            before = manager.stats.snapshot()
            versions = {function: function.cfg_version
                        for function in module.defined_functions()} \
                if not isinstance(pass_, FunctionPass) else {}
            start = time.perf_counter()
            try:
                pass_changed = bool(pass_.run(module))
            except Exception as error:
                current = getattr(pass_, "current_function", None)
                raise PassPipelineError(
                    pass_.name, index,
                    current.name if current is not None else None,
                    error) from error
            if pass_changed and not isinstance(pass_, FunctionPass):
                # Function passes invalidate as they go; everything else is
                # invalidated here — precisely when the pass tracked the
                # functions it touched, conservatively otherwise.  Functions
                # whose block graph never moved keep all managed analyses
                # (they are pure functions of the CFG).
                modified = pass_.take_modified()
                targets = modified if modified is not None \
                    else module.defined_functions()
                manager.invalidate_functions(
                    (function for function in targets
                     if function.cfg_version != versions.get(function, -1)),
                    pass_.preserves)
            elapsed = time.perf_counter() - start
            self.timings.append(PassTiming(
                pass_.name, index, elapsed, pass_changed,
                manager.stats.delta(before)))
            if self.verify_analyses:
                manager.verify_analyses()
            if self.verify_each:
                verify_module(module)
            changed |= pass_changed
        return changed

    @property
    def pass_names(self) -> list[str]:
        return [p.name for p in self.passes]

    def timing_report(self) -> list[dict]:
        """Per-slot timing/cache records of the most recent run, as dicts."""
        return [timing.as_dict() for timing in self.timings]


def run_passes(module: Module, names: Iterable[str],
               config: Optional[PassConfig] = None,
               verify_each: bool = False,
               analysis_cache: bool = True) -> Module:
    """Clone ``module``, run the named passes on the clone, and return it."""
    cloned = module.clone()
    PassManager(names, config, verify_each,
                analysis_cache=analysis_cache).run(cloned)
    return cloned
