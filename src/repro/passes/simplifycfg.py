"""Control-flow graph simplification (simplifycfg) and mergereturn.

simplifycfg performs the classic clean-ups (dead block removal, constant
branch folding, block merging, empty-block forwarding) plus the
transformation the paper's Figure 13 highlights: folding small if/else
diamonds into ``select`` instructions.  On x86 this removes mispredictable
branches; on zkVMs it forces both arms to execute every time, which is why
the zkVM-aware configuration makes it more conservative.
"""

from __future__ import annotations

from ..ir import (
    BasicBlock, Branch, CondBranch, Constant, Function, Instruction, Load,
    Module, Phi, Ret, Select, Store, predecessors_map, remove_unreachable_blocks,
    I32,
)
from .pass_manager import FunctionPass, register_pass
from .utils import constant_value


def fold_constant_branches(function: Function) -> bool:
    """Turn ``br const, A, B`` into an unconditional branch."""
    changed = False
    for block in function.blocks:
        term = block.terminator
        if not isinstance(term, CondBranch):
            continue
        cond = constant_value(term.condition)
        if cond is None:
            continue
        taken = term.true_target if cond & 1 else term.false_target
        not_taken = term.false_target if cond & 1 else term.true_target
        if not_taken is not taken:
            for phi in not_taken.phis():
                phi.remove_incoming(block)
        term.erase()
        block.append(Branch(taken))
        changed = True
    return changed


def merge_single_predecessor_blocks(function: Function) -> bool:
    """Merge a block into its unique predecessor when that predecessor has a
    single successor.

    The predecessor map is maintained incrementally across merges within a
    sweep (the seed rebuilt it from scratch after every single merge, which
    made long merge chains quadratic); sweeps repeat until a full pass over
    the blocks finds nothing to merge.
    """
    changed = True
    any_change = False
    while changed:
        changed = False
        preds = {block: list(entries)
                 for block, entries in predecessors_map(function).items()}
        for block in list(function.blocks):
            if block.parent is None or block is function.entry_block:
                continue
            block_preds = preds.get(block, [])
            if len(block_preds) != 1:
                continue
            pred = block_preds[0]
            if pred.parent is None or len(pred.successors) != 1 or pred is block:
                continue
            if block.phis():
                # Single predecessor: every phi is trivially its incoming value.
                for phi in list(block.phis()):
                    value = phi.incoming_for_block(pred)
                    if value is not None:
                        phi.replace_all_uses_with(value)
                    phi.erase()
            # Splice instructions (minus pred's terminator) together.
            pred_term = pred.terminator
            if pred_term is not None:
                pred_term.erase()
            for inst in list(block.instructions):
                block.remove_instruction(inst)
                pred.append(inst)
            # Successor phis must now name `pred` instead of `block`.
            for succ in pred.successors:
                for phi in succ.phis():
                    phi.replace_incoming_block(block, pred)
                entries = preds.get(succ)
                if entries is not None:
                    preds[succ] = [pred if p is block else p for p in entries]
            function.remove_block(block)
            preds.pop(block, None)
            changed = True
            any_change = True
    return any_change


def remove_empty_forwarding_blocks(function: Function) -> bool:
    """Remove blocks that contain only an unconditional branch."""
    changed = False
    for block in list(function.blocks):
        if block is function.entry_block or len(block.instructions) != 1:
            continue
        term = block.terminator
        if not isinstance(term, Branch):
            continue
        target = term.target
        if target is block:
            continue
        # If the target has phis, retargeting predecessors requires adding
        # incoming entries; only do it when the target has none (common case).
        if target.phis():
            continue
        preds = block.predecessors
        if not preds:
            continue
        for pred in preds:
            pred.replace_successor(block, target)
        function.remove_block(block)
        changed = True
    return changed


def fold_branch_to_select(function: Function, max_speculated: int,
                          zkvm_aware: bool) -> bool:
    """Convert small if/else diamonds that only compute a value into selects.

    Pattern::

            head:  br %c, then, else
            then:  <speculatable>  br merge
            else:  <speculatable>  br merge
            merge: %phi = phi [a, then], [b, else]

    The then/else arms are hoisted into ``head`` and the phi becomes a select.
    ``max_speculated`` bounds how many instructions may be speculated per arm
    (0 disables the transformation, which is what the zkVM-aware profile uses
    for multi-instruction arms).
    """
    if max_speculated <= 0:
        return False
    changed = False
    for head in list(function.blocks):
        term = head.terminator
        if not isinstance(term, CondBranch):
            continue
        then_block, else_block = term.true_target, term.false_target
        if then_block is else_block:
            continue
        merge = _diamond_merge(head, then_block, else_block)
        if merge is None:
            continue
        arms = [b for b in (then_block, else_block) if b is not merge]
        if not _speculatable(arms, max_speculated):
            continue
        if any(len(b.predecessors) != 1 for b in arms):
            continue
        # The merge block must be reached only through this diamond/triangle.
        expected_preds = set(map(id, arms)) | ({id(head)} if len(arms) == 1 else set())
        if set(map(id, merge.predecessors)) != expected_preds:
            continue
        # Every phi in the merge must resolve to one value per arm of the branch.
        true_key = then_block if then_block is not merge else head
        false_key = else_block if else_block is not merge else head
        phi_rewrites = []
        resolvable = True
        for phi in merge.phis():
            true_value = phi.incoming_for_block(true_key)
            false_value = phi.incoming_for_block(false_key)
            if true_value is None or false_value is None:
                resolvable = False
                break
            phi_rewrites.append((phi, true_value, false_value))
        if not resolvable:
            continue
        # Hoist arm instructions into the head, before the terminator.
        for arm in arms:
            for inst in list(arm.instructions):
                if inst.is_terminator:
                    continue
                arm.remove_instruction(inst)
                head.insert_before_terminator(inst)
        # Rewrite merge phis into selects.
        for phi, true_value, false_value in phi_rewrites:
            select = Select(term.condition, true_value, false_value, phi.name)
            head.insert_before_terminator(select)
            phi.replace_all_uses_with(select)
            phi.erase()
        # Head now branches straight to the merge block.
        term.erase()
        head.append(Branch(merge))
        for arm in arms:
            function.remove_block(arm)
        changed = True
    return changed


def _diamond_merge(head: BasicBlock, then_block: BasicBlock,
                   else_block: BasicBlock) -> BasicBlock | None:
    """Identify the merge block of an if/else diamond or if-then triangle."""
    def single_successor(block: BasicBlock) -> BasicBlock | None:
        succs = block.successors
        return succs[0] if len(succs) == 1 else None

    then_succ = single_successor(then_block)
    else_succ = single_successor(else_block)
    # Full diamond.
    if then_succ is not None and then_succ is else_succ:
        return then_succ
    # Triangle: one arm *is* the merge block.
    if then_succ is else_block:
        return else_block
    if else_succ is then_block:
        return then_block
    return None


def _speculatable(arms: list[BasicBlock], max_speculated: int) -> bool:
    for arm in arms:
        body = [i for i in arm.instructions if not i.is_terminator]
        if len(body) > max_speculated:
            return False
        for inst in body:
            if isinstance(inst, Phi) or not inst.is_safe_to_speculate():
                return False
        if not isinstance(arm.terminator, Branch):
            return False
    return True


@register_pass
class SimplifyCFG(FunctionPass):
    """Simplify the control-flow graph."""

    name = "simplifycfg"
    module_independent = True
    description = "Dead block removal, branch folding, block merging, if-conversion"

    def run_on_function(self, function: Function, module: Module) -> bool:
        threshold = self.config.fold_branch_to_select_threshold
        if self.config.zkvm_aware:
            # Change Set 2: only convert single-instruction arms, where the
            # instruction-count cost of executing both sides is minimal.
            threshold = min(threshold, 1)
        changed = False
        for _ in range(4):
            round_changed = False
            round_changed |= fold_constant_branches(function)
            round_changed |= remove_unreachable_blocks(function) > 0
            round_changed |= remove_empty_forwarding_blocks(function)
            round_changed |= merge_single_predecessor_blocks(function)
            round_changed |= fold_branch_to_select(function, threshold, self.config.zkvm_aware)
            changed |= round_changed
            if not round_changed:
                break
        return changed


@register_pass
class MergeReturn(FunctionPass):
    """Unify multiple return statements into a single exit block."""

    name = "mergereturn"
    module_independent = True
    description = "Merge multiple function exits into one return block"

    def run_on_function(self, function: Function, module: Module) -> bool:
        returns = [block for block in function.blocks
                   if isinstance(block.terminator, Ret)]
        if len(returns) < 2:
            return False
        exit_block = function.add_block("unified.exit")
        returns_value = any(r.terminator.value is not None for r in returns)  # type: ignore[union-attr]
        phi = None
        if returns_value:
            phi = Phi(I32, "merged.retval")
            exit_block.append(phi)
        for block in returns:
            ret = block.terminator
            assert isinstance(ret, Ret)
            if phi is not None:
                phi.add_incoming(ret.value if ret.value is not None else Constant(0), block)
            ret.erase()
            block.append(Branch(exit_block))
        exit_block.append(Ret(phi if phi is not None else None))
        return True
