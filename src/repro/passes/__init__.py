"""Optimization passes and pipelines.

The public surface mirrors how the paper drives LLVM: individual passes are
addressed by name (``run_passes(module, ["licm"])``), and the preset levels
(-O0 ... -O3, -Os, -Oz) are available through
:func:`repro.passes.pipelines.pipeline_for_level`.
"""

from .analysis import (
    ALL_ANALYSES, AnalysisManager, AnalysisStats, PRESERVE_ALL, PRESERVE_NONE,
    StaleAnalysisError,
)
from .pass_manager import (
    FunctionPass, ModulePass, Pass, PassConfig, PassManager, PassPipelineError,
    PassTiming, available_passes, get_pass, register_pass, run_passes,
)
from .pipelines import (
    BASELINE, OPTIMIZATION_LEVELS, apply_zkvm_aware_overrides, config_for_level,
    pipeline_for_level,
)

# Importing the pass modules registers every pass.
from . import (  # noqa: F401,E402
    cse, dce, inline, jump_threading, loop_extract, loop_passes, loop_unroll,
    mem2reg, misc, reg2mem, sccp, simplify, simplifycfg, sroa, tailcall,
    unswitch,
)

__all__ = [
    "ALL_ANALYSES", "AnalysisManager", "AnalysisStats", "PRESERVE_ALL",
    "PRESERVE_NONE", "StaleAnalysisError",
    "FunctionPass", "ModulePass", "Pass", "PassConfig", "PassManager",
    "PassPipelineError", "PassTiming",
    "available_passes", "get_pass", "register_pass", "run_passes",
    "BASELINE", "OPTIMIZATION_LEVELS", "apply_zkvm_aware_overrides",
    "config_for_level", "pipeline_for_level",
]
