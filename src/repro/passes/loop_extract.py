"""loop-extract: outline natural loops into separate functions.

LLVM ships this as a utility pass (it was designed for bug isolation), and
the paper finds it is one of the most harmful passes on zkVMs: every extracted
loop adds call/return and argument-marshalling instructions on a hot path.
We outline innermost-to-outermost, passing live-in values as arguments.
"""

from __future__ import annotations

from ..ir import (
    Argument, BasicBlock, Branch, Call, CondBranch, Constant, Function,
    GlobalVariable, Instruction, Loop, LoopInfo, Module, Phi, Ret, Value,
    remove_unreachable_blocks, I32, VOID,
)
from .pass_manager import ModulePass, register_pass
from .loop_utils import ensure_preheader


def _live_ins(loop: Loop) -> list[Value]:
    """Values defined outside the loop but used inside (excluding constants and
    globals, which remain directly accessible)."""
    live: list[Value] = []
    seen: set[int] = set()
    for block in loop.blocks:
        for inst in block.instructions:
            for op in inst.operands:
                if isinstance(op, (Constant, GlobalVariable, BasicBlock, Function)):
                    continue
                if isinstance(op, Instruction) and op.parent in loop.blocks:
                    continue
                if isinstance(op, Phi) and op.parent in loop.blocks:
                    continue
                if id(op) in seen:
                    continue
                seen.add(id(op))
                live.append(op)
    return live


def _has_live_outs(loop: Loop) -> bool:
    for block in loop.blocks:
        for inst in block.instructions:
            for user in inst.users:
                if isinstance(user, Instruction) and user.parent is not None \
                        and user.parent not in loop.blocks:
                    return True
    return False


def extract_loop(loop: Loop, function: Function, module: Module,
                 counter: int) -> bool:
    """Outline ``loop`` into a new function.  Returns True on success."""
    preheader = ensure_preheader(loop, function)
    if preheader is None:
        return False
    exits = loop.exit_blocks()
    if len(exits) != 1:
        return False
    exit_block = exits[0]
    if exit_block.phis():
        return False
    if _has_live_outs(loop):
        return False
    # Header phis may only depend on the preheader and in-loop blocks.
    header = loop.header
    for phi in header.phis():
        for _, pred in phi.incoming:
            if pred is not preheader and pred not in loop.blocks:
                return False
    live_ins = _live_ins(loop)
    if any(isinstance(v, BasicBlock) for v in live_ins):
        return False
    # The RISC-V calling convention passes the first eight arguments in
    # registers; loops needing more live-ins are not outlined.
    if len(live_ins) > 8:
        return False

    name = module_unique_name(module, f"{function.name}.loop{counter}")
    outlined = module.create_function(name, VOID, [I32] * len(live_ins),
                                      [f"in{i}" for i in range(len(live_ins))])
    outlined.attributes.add("noinline")
    value_map: dict = {v: a for v, a in zip(live_ins, outlined.arguments)}

    entry = outlined.add_block("entry")
    return_block = outlined.add_block("loop.exit")
    return_block.append(Ret(None))

    # Move the loop blocks into the outlined function.
    loop_blocks = list(loop.blocks)
    for block in loop_blocks:
        function.blocks.remove(block)
        block.parent = outlined
        outlined.blocks.append(block)
    function.invalidate_cfg()
    outlined.invalidate_cfg()
    entry.append(Branch(header))

    # Rewrite references: live-ins become arguments, exits return.
    for block in loop_blocks:
        for inst in block.instructions:
            for old, new in value_map.items():
                inst.replace_operand(old, new)
            if isinstance(inst, (Branch, CondBranch)):
                inst.replace_successor(exit_block, return_block)
        for phi in block.phis():
            phi.replace_incoming_block(preheader, entry)

    # The caller now calls the outlined loop and continues at the exit block.
    call = Call(name, list(live_ins), VOID)
    preheader.insert_before_terminator(call)
    preheader.replace_successor(header, exit_block)
    remove_unreachable_blocks(function)
    return True


def module_unique_name(module: Module, base: str) -> str:
    name = base
    suffix = 0
    while module.get_function(name) is not None:
        suffix += 1
        name = f"{base}.{suffix}"
    return name


@register_pass
class LoopExtract(ModulePass):
    """Extract every natural loop into its own function."""

    name = "loop-extract"
    description = "Outline natural loops into separate functions"
    tracks_modified = True  # the source function; outlined ones are brand new

    def run(self, module: Module) -> bool:
        changed = False
        counter = 0
        for function in list(module.defined_functions()):
            # Extract innermost loops first; re-discover after each extraction
            # because the CFG (and loop forest) changes — the analysis manager
            # recomputes automatically once the CFG version has moved.
            for _ in range(16):
                loop_info = self.analysis.loop_info(function)
                loops = sorted(loop_info.loops(), key=lambda l: -l.depth)
                extracted = False
                for loop in loops:
                    counter += 1
                    if extract_loop(loop, function, module, counter):
                        self.note_modified(function)
                        extracted = True
                        changed = True
                        break
                if not extracted:
                    break
        return changed
