"""Shared helpers used by multiple passes: constant folding, triviality checks
and a very small alias analysis."""

from __future__ import annotations

from typing import Optional

from ..ir import (
    Alloca, Argument, BinaryOp, Call, Cast, Constant, GEP, GlobalVariable,
    ICmp, Instruction, Load, Phi, Select, Store, Value, I1, I32,
)
from ..ir.interpreter import Interpreter

WORD_MASK = 0xFFFFFFFF

_BINOP = Interpreter._binop
_ICMP = Interpreter._icmp


def to_signed(value: int) -> int:
    value &= WORD_MASK
    return value - (1 << 32) if value >= (1 << 31) else value


def fold_binary(opcode: str, lhs: int, rhs: int) -> int:
    """Constant-fold a binary operation on 32-bit values (RISC-V semantics)."""
    return _BINOP(opcode, lhs & WORD_MASK, rhs & WORD_MASK)


def fold_icmp(predicate: str, lhs: int, rhs: int) -> int:
    """Constant-fold an integer comparison; returns 0 or 1."""
    return int(_ICMP(predicate, lhs & WORD_MASK, rhs & WORD_MASK))


def constant_value(value: Value) -> Optional[int]:
    """The unsigned constant value of ``value``, or None."""
    if isinstance(value, Constant):
        return value.value
    return None


def is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


def log2_exact(value: int) -> int:
    return value.bit_length() - 1


def replace_and_erase(inst: Instruction, replacement: Value) -> None:
    """RAUW + erase, the workhorse of most peephole rewrites."""
    inst.replace_all_uses_with(replacement)
    inst.erase()


def is_trivially_dead(inst: Instruction) -> bool:
    """Dead if it has no users and no side effects (allocas count as dead too)."""
    if inst.users:
        return False
    if isinstance(inst, (Store, Call)) or inst.is_terminator:
        return False
    return True


def underlying_object(pointer: Value) -> Value:
    """Chase GEPs back to the allocation or global the pointer is based on."""
    seen = 0
    while isinstance(pointer, GEP) and seen < 64:
        pointer = pointer.base
        seen += 1
    return pointer


def may_alias(a: Value, b: Value) -> bool:
    """A conservative may-alias test between two pointers.

    Distinct allocas never alias; distinct globals never alias; an alloca
    never aliases a global.  Anything involving an unknown pointer (function
    argument, loaded pointer) may alias everything.
    """
    base_a = underlying_object(a)
    base_b = underlying_object(b)
    if base_a is base_b:
        return True
    known_a = isinstance(base_a, (Alloca, GlobalVariable))
    known_b = isinstance(base_b, (Alloca, GlobalVariable))
    if known_a and known_b:
        return False
    return True


def address_taken(alloca: Alloca) -> bool:
    """True if the alloca's address escapes (used by anything other than
    direct loads, stores of *other* values, or constant-index GEPs feeding
    loads/stores)."""
    for user in alloca.users:
        if isinstance(user, Load):
            continue
        if isinstance(user, Store) and user.pointer is alloca and user.value is not alloca:
            continue
        return True
    return False


def single_user(value: Value) -> Optional[Instruction]:
    users = [u for u in value.users if isinstance(u, Instruction)]
    return users[0] if len(users) == 1 else None


def same_value(a: Value, b: Value) -> bool:
    """Structural equality for constants, identity otherwise."""
    if a is b:
        return True
    if isinstance(a, Constant) and isinstance(b, Constant):
        return a.value == b.value and a.type == b.type
    return False
