"""Loop unrolling (loop-unroll) and unroll-and-jam.

Only *full* unrolling of constant-trip-count loops is implemented: the loop
body is replicated trip-count times and the loop structure disappears.  On
CPUs unrolling additionally enables ILP and amortizes branch costs; on zkVMs
the paper's Principle 3 applies — unrolling only pays off when it reduces the
number of executed instructions (it removes the per-iteration compare,
increment and branch, at the price of code size).
"""

from __future__ import annotations

from ..ir import (
    Alloca, BasicBlock, Branch, CondBranch, Function, Instruction, Loop,
    Module, Phi, remove_unreachable_blocks,
)
from ..ir.cloning import clone_instruction
from .pass_manager import FunctionPass, register_pass
from .loop_utils import ensure_preheader, find_induction_variable, form_lcssa


def _unrollable(loop: Loop) -> bool:
    """Structural requirements for the full unroller."""
    if loop.subloops:
        return False
    if len(loop.latches) != 1:
        return False
    latch = loop.latches[0]
    if latch is not loop.header and not isinstance(latch.terminator, Branch):
        return False
    # All phis must live in the header.
    for block in loop.blocks:
        if block is not loop.header and block.phis():
            return False
    # The header must be the only exiting block.
    for block in loop.blocks:
        for succ in block.successors:
            if succ not in loop.blocks and block is not loop.header:
                return False
    return True


def fully_unroll_loop(loop: Loop, function: Function, trip_count: int) -> bool:
    """Replace ``loop`` with ``trip_count`` straight-line copies of its body.

    Requires the canonical shape checked by :func:`_unrollable` plus a
    preheader.  Returns True on success.
    """
    if trip_count <= 0 or not _unrollable(loop):
        return False
    preheader = loop.preheader()
    if preheader is None:
        return False
    iv = find_induction_variable(loop)
    if iv is None:
        return False
    header = loop.header
    latch = loop.latches[0]
    # RPO so every cloned def lands in the value map before its uses; the
    # seed iterated the bare block set, which (address-dependently) cloned
    # uses before defs and emitted invalid IR.
    loop_blocks = loop.body_in_rpo()
    header_phis = header.phis()

    # Current value of every header phi at the start of the iteration being
    # emitted; starts with the preheader incoming values.
    phi_values: dict[Phi, object] = {}
    for phi in header_phis:
        incoming = phi.incoming_for_block(preheader)
        if incoming is None:
            return False
        phi_values[phi] = incoming
    latch_incoming: dict[Phi, object] = {}
    for phi in header_phis:
        values = [v for v, b in phi.incoming if b in loop.blocks]
        if len(values) != 1:
            return False
        latch_incoming[phi] = values[0]

    insert_position = function.blocks.index(preheader) + 1
    previous_tail: BasicBlock = preheader
    last_iteration_map: dict = {}

    for iteration in range(trip_count):
        value_map: dict = dict(phi_values)
        block_map: dict = {}
        new_blocks: list[BasicBlock] = []
        for old_block in loop_blocks:
            new_block = BasicBlock(function.unique_name(f"{old_block.name}.unroll{iteration}"),
                                   function)
            block_map[old_block] = new_block
            new_blocks.append(new_block)
        for old_block, new_block in zip(loop_blocks, new_blocks):
            for inst in old_block.instructions:
                if isinstance(inst, Phi):
                    continue  # substituted through value_map
                if inst is header.terminator and old_block is header:
                    continue  # the header branch is rewritten below
                if inst is latch.terminator and old_block is latch:
                    continue  # the back edge is rewritten below
                cloned = clone_instruction(inst, value_map, block_map)
                new_block.append(cloned)
                if inst.has_result:
                    value_map[inst] = cloned
        new_header = block_map[header]
        new_latch = block_map[latch]
        if header is latch:
            # Single-block loop: the copy simply falls through to the next
            # iteration (placeholder target patched below).
            new_header.append(Branch(header))
        else:
            # Header copy falls into the body copy; latch copy falls through to
            # the next iteration (placeholder target patched below).
            new_header.append(Branch(block_map.get(iv.body_successor, iv.body_successor)))
            new_latch.append(Branch(header))

        for offset, new_block in enumerate(new_blocks):
            function.blocks.insert(insert_position + offset, new_block)
        function.invalidate_cfg()
        insert_position += len(new_blocks)

        # Wire the previous tail into this iteration's header copy.
        previous_tail.replace_successor(header, new_header)
        previous_tail = new_latch

        # Advance the phi values for the next iteration.
        next_values = {}
        for phi in header_phis:
            incoming = latch_incoming[phi]
            next_values[phi] = value_map.get(incoming, incoming)
        phi_values = next_values
        last_iteration_map = value_map

    # Final header evaluation: executed once more, then exits.
    final_map = dict(phi_values)
    final_header = BasicBlock(function.unique_name(f"{header.name}.final"), function)
    for inst in header.instructions:
        if isinstance(inst, Phi) or inst.is_terminator:
            continue
        cloned = clone_instruction(inst, final_map, {})
        final_header.append(cloned)
        if inst.has_result:
            final_map[inst] = cloned
    final_header.append(Branch(iv.exit_block))
    function.blocks.insert(insert_position, final_header)
    function.invalidate_cfg()
    previous_tail.replace_successor(header, final_header)

    # Values defined in the loop and used outside must refer to their final copy.
    for old_block in loop_blocks:
        for inst in old_block.instructions:
            if not inst.has_result:
                continue
            replacement = None
            if isinstance(inst, Phi) and inst in final_map:
                replacement = final_map[inst]
            elif inst in final_map:
                replacement = final_map[inst]
            elif inst in last_iteration_map:
                replacement = last_iteration_map[inst]
            if replacement is None:
                continue
            for user in list(inst.users):
                if isinstance(user, Instruction) and user.parent is not None \
                        and user.parent not in loop.blocks:
                    user.replace_operand(inst, replacement)

    # Exit-block phis that referenced the old header now come from final_header.
    for phi in iv.exit_block.phis():
        phi.replace_incoming_block(header, final_header)

    remove_unreachable_blocks(function)
    return True


@register_pass
class LoopUnroll(FunctionPass):
    """Fully unroll small constant-trip-count loops."""

    name = "loop-unroll"
    module_independent = True
    description = "Fully unroll loops with small constant trip counts"

    def run_on_function(self, function: Function, module: Module) -> bool:
        changed = False
        # Re-discover loops after each unroll, since the CFG changes radically
        # (the analysis manager recomputes automatically once the CFG version
        # has moved; untouched rounds are answered from the cache).
        for _ in range(8):
            loop_info = self.analysis.loop_info(function)
            candidates = [l for l in loop_info.loops() if not l.subloops]
            unrolled = False
            for loop in candidates:
                blocks_before = len(function.blocks)
                preheader = ensure_preheader(loop, function)
                changed |= len(function.blocks) != blocks_before
                if preheader is None:
                    continue
                changed |= form_lcssa(loop, function)
                iv = find_induction_variable(loop)
                if iv is None:
                    continue
                trip_count = iv.trip_count(1 << 14)
                if trip_count is None or trip_count == 0:
                    continue
                loop_size = sum(len(b) for b in loop.blocks)
                if trip_count > self.config.unroll_full_max_trip_count:
                    continue
                if trip_count * loop_size > self.config.unroll_threshold:
                    continue
                if fully_unroll_loop(loop, function, trip_count):
                    unrolled = True
                    changed = True
                    break
            if not unrolled:
                break
        return changed


@register_pass
class LoopUnrollAndJam(FunctionPass):
    """unroll-and-jam: unroll inner loops of shallow nests (simplified: the
    innermost loop of a two-deep nest is fully unrolled when small)."""

    name = "loop-unroll-and-jam"
    module_independent = True
    description = "Unroll inner loops of loop nests"

    def run_on_function(self, function: Function, module: Module) -> bool:
        changed = False
        loop_info = self.analysis.loop_info(function)
        for loop in loop_info.loops():
            if loop.subloops or loop.parent is None:
                continue  # only inner loops that actually have a parent nest
            blocks_before = len(function.blocks)
            preheader = ensure_preheader(loop, function)
            changed |= len(function.blocks) != blocks_before
            if preheader is None:
                continue
            changed |= form_lcssa(loop, function)
            iv = find_induction_variable(loop)
            if iv is None:
                continue
            trip_count = iv.trip_count(1 << 12)
            if trip_count is None or not 1 <= trip_count <= 8:
                continue
            changed |= fully_unroll_loop(loop, function, trip_count)
        return changed
