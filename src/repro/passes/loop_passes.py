"""Loop optimization passes: licm, loop-rotate, loop-deletion,
loop-instsimplify, indvars, loop-reduce, loop-idiom and irce.

All loop passes first canonicalize the loop (preheader insertion, LCSSA),
exactly as LLVM's loop pass manager does.  That canonicalization is not free:
it adds blocks, branches and phi nodes, which is one of the sources of the
zkVM regressions the paper reports for loop passes applied in isolation.
"""

from __future__ import annotations

from ..ir import (
    BasicBlock, BinaryOp, Branch, Call, CondBranch, Constant, Function, GEP,
    ICmp, Instruction, Load, Loop, Module, Phi, Store, Value,
    remove_unreachable_blocks, I1,
)
from ..ir.cloning import clone_instruction
from .analysis import PRESERVE_ALL
from .pass_manager import FunctionPass, register_pass
from .loop_utils import (
    ensure_preheader, find_induction_variable, form_lcssa, loop_is_invariant,
)
from .simplify import run_instsimplify
from .utils import constant_value, fold_icmp, to_signed


class _LoopPassBase(FunctionPass):
    """Iterates over loops (innermost first) applying :meth:`run_on_loop`.

    The loop forest is requested from the analysis manager once per function
    (exactly where the seed constructed it) and — matching the seed — is *not*
    refreshed between loops, even though canonicalization may grow the CFG.
    """

    canonicalize = True

    def run_on_function(self, function: Function, module: Module) -> bool:
        changed = False
        loop_info = self.analysis.loop_info(function)
        loops = sorted(loop_info.loops(), key=lambda l: -l.depth)
        for loop in loops:
            if self.canonicalize:
                # ensure_preheader may create a block: detect that as a change
                # (the seed under-reported it, which was harmless only because
                # nothing cached analyses across passes).
                blocks_before = len(function.blocks)
                preheader = ensure_preheader(loop, function)
                changed |= len(function.blocks) != blocks_before
                if preheader is None:
                    continue
                changed_lcssa = form_lcssa(loop, function)
                changed |= changed_lcssa
            changed |= bool(self.run_on_loop(loop, function, module))
        return changed

    def run_on_loop(self, loop: Loop, function: Function, module: Module) -> bool:
        raise NotImplementedError


@register_pass
class LICM(_LoopPassBase):
    """Loop-invariant code motion."""

    name = "licm"
    module_independent = True
    description = "Hoist loop-invariant computations into the loop preheader"

    def run_on_loop(self, loop: Loop, function: Function, module: Module) -> bool:
        preheader = loop.preheader()
        if preheader is None:
            return False
        changed = False
        loop_has_memory_writes = any(
            isinstance(i, (Store, Call))
            for block in loop.blocks for i in block.instructions)

        progress = True
        while progress:
            progress = False
            for block in list(loop.blocks):
                for inst in list(block.instructions):
                    if inst.parent is None or isinstance(inst, Phi) or inst.is_terminator:
                        continue
                    if not all(loop_is_invariant(op, loop) for op in inst.operands):
                        continue
                    hoistable = inst.is_safe_to_speculate()
                    if isinstance(inst, Load) and not loop_has_memory_writes:
                        hoistable = True
                    if not hoistable:
                        continue
                    block.remove_instruction(inst)
                    preheader.insert_before_terminator(inst)
                    progress = True
                    changed = True
        return changed


@register_pass
class LoopInstSimplify(_LoopPassBase):
    """Run instruction simplification on loop bodies only."""

    name = "loop-instsimplify"
    module_independent = True
    description = "Simplify instructions inside loops"
    canonicalize = False
    preserves = PRESERVE_ALL  # no canonicalization; folds instructions only

    def run_on_loop(self, loop: Loop, function: Function, module: Module) -> bool:
        return run_instsimplify(function, only_blocks=loop.blocks)


@register_pass
class LoopRotate(_LoopPassBase):
    """Rotate top-tested loops into bottom-tested (do-while) form."""

    name = "loop-rotate"
    module_independent = True
    description = "Rotate while-style loops into do-while form"

    MAX_HEADER_SIZE = 16

    def run_on_loop(self, loop: Loop, function: Function, module: Module) -> bool:
        header = loop.header
        term = header.terminator
        if not isinstance(term, CondBranch) or header.phis():
            return False
        in_loop = [s for s in term.successors if s in loop.blocks]
        out_loop = [s for s in term.successors if s not in loop.blocks]
        if len(in_loop) != 1 or len(out_loop) != 1:
            return False
        if in_loop[0].phis() or out_loop[0].phis():
            return False
        body = [i for i in header.instructions if not i.is_terminator]
        if len(body) > self.MAX_HEADER_SIZE:
            return False
        if any(isinstance(i, (Store, Call)) for i in body):
            return False
        # Every predecessor must reach the header through an unconditional branch.
        preds = header.predecessors
        if not preds or any(not isinstance(p.terminator, Branch) for p in preds):
            return False
        # Results of header instructions must not be used elsewhere (no phis yet,
        # so any outside use would break when the header is duplicated).
        for inst in body:
            for user in inst.users:
                if isinstance(user, Instruction) and user.parent is not header:
                    return False

        for pred in preds:
            value_map: dict = {}
            for inst in body:
                cloned = clone_instruction(inst, value_map, {})
                pred.insert_before_terminator(cloned)
                value_map[inst] = cloned
            new_term = clone_instruction(term, value_map, {})
            pred.terminator.erase()
            pred.append(new_term)

        # The original header is now bypassed by every predecessor.
        remove_unreachable_blocks(function)
        return True


@register_pass
class LoopDeletion(_LoopPassBase):
    """Delete loops with no observable effects and a provably finite trip count."""

    name = "loop-deletion"
    module_independent = True
    description = "Remove side-effect-free loops whose results are unused"

    def run_on_loop(self, loop: Loop, function: Function, module: Module) -> bool:
        preheader = loop.preheader()
        if preheader is None:
            return False
        iv = find_induction_variable(loop)
        if iv is None or iv.trip_count(1 << 16) is None:
            return False
        # No stores, calls, or values used outside the loop.
        for block in loop.blocks:
            for inst in block.instructions:
                if isinstance(inst, (Store, Call)):
                    return False
                for user in inst.users:
                    if isinstance(user, Instruction) and user.parent is not None \
                            and user.parent not in loop.blocks:
                        return False
        exits = loop.exit_blocks()
        if len(exits) != 1 or exits[0].phis():
            return False
        exit_block = exits[0]
        if any(p not in loop.blocks for p in exit_block.predecessors):
            return False
        preheader.replace_successor(loop.header, exit_block)
        remove_unreachable_blocks(function)
        return True


@register_pass
class IndVarSimplify(_LoopPassBase):
    """Induction variable simplification: strength-reduce ``iv * c`` into a
    separate additive induction variable."""

    name = "indvars"
    module_independent = True
    description = "Canonicalize and strength-reduce induction variables"

    def run_on_loop(self, loop: Loop, function: Function, module: Module) -> bool:
        preheader = loop.preheader()
        if preheader is None:
            return False
        iv = find_induction_variable(loop)
        if iv is None:
            return False
        changed = False
        update_block = iv.update.parent
        if update_block is None:
            return False
        for block in list(loop.blocks):
            for inst in list(block.instructions):
                if not isinstance(inst, BinaryOp) or inst.opcode != "mul":
                    continue
                if inst.lhs is iv.phi and constant_value(inst.rhs) is not None:
                    factor = to_signed(constant_value(inst.rhs))
                elif inst.rhs is iv.phi and constant_value(inst.lhs) is not None:
                    factor = to_signed(constant_value(inst.lhs))
                else:
                    continue
                init_const = constant_value(iv.init)
                if init_const is None:
                    continue
                derived = Phi(inst.type, f"{inst.name}.iv")
                loop.header.insert(0, derived)
                step = BinaryOp("add", derived, Constant(iv.step * factor), f"{inst.name}.iv.next")
                update_block.insert(update_block.instructions.index(iv.update) + 1, step)
                derived.add_incoming(Constant(to_signed(init_const) * factor), preheader)
                for latch in loop.latches:
                    derived.add_incoming(step, latch)
                inst.replace_all_uses_with(derived)
                inst.erase()
                changed = True
        return changed


@register_pass
class LoopStrengthReduce(_LoopPassBase):
    """loop-reduce (LSR): rewrite ``gep(base, iv)`` into a strided pointer IV."""

    name = "loop-reduce"
    module_independent = True
    description = "Strength-reduce array addressing inside loops"

    def run_on_loop(self, loop: Loop, function: Function, module: Module) -> bool:
        preheader = loop.preheader()
        if preheader is None:
            return False
        iv = find_induction_variable(loop)
        if iv is None or len(loop.latches) != 1:
            return False
        latch = loop.latches[0]
        changed = False
        for block in list(loop.blocks):
            for inst in list(block.instructions):
                if not isinstance(inst, GEP) or inst.parent is None:
                    continue
                if inst.index is not iv.phi or not loop_is_invariant(inst.base, loop):
                    continue
                pointer_phi = Phi(inst.type, f"{inst.name}.lsr")
                loop.header.insert(0, pointer_phi)
                initial = GEP(inst.base, iv.init, inst.element_size, f"{inst.name}.lsr.init")
                preheader.insert_before_terminator(initial)
                stride = GEP(pointer_phi, Constant(iv.step), inst.element_size,
                             f"{inst.name}.lsr.next")
                latch.insert_before_terminator(stride)
                pointer_phi.add_incoming(initial, preheader)
                pointer_phi.add_incoming(stride, latch)
                inst.replace_all_uses_with(pointer_phi)
                inst.erase()
                changed = True
        return changed


@register_pass
class LoopIdiom(_LoopPassBase):
    """loop-idiom: recognize memset-style initialisation loops and unroll them
    by four (emulating the wide-store rewrite LLVM performs)."""

    name = "loop-idiom"
    module_independent = True
    description = "Rewrite memset-style loops into wider unrolled stores"

    def run_on_loop(self, loop: Loop, function: Function, module: Module) -> bool:
        from .loop_unroll import fully_unroll_loop

        if loop.subloops:
            return False
        iv = find_induction_variable(loop)
        if iv is None or iv.step != 1:
            return False
        trip_count = iv.trip_count(1 << 12)
        if trip_count is None or not 4 <= trip_count <= 64:
            return False
        # The loop body must consist only of IV bookkeeping plus a single store
        # of a loop-invariant value through a gep indexed by the IV.
        stores = []
        for block in loop.blocks:
            for inst in block.instructions:
                if isinstance(inst, Store):
                    stores.append(inst)
                elif isinstance(inst, Call):
                    return False
        if len(stores) != 1:
            return False
        store = stores[0]
        if not loop_is_invariant(store.value, loop):
            return False
        if not isinstance(store.pointer, GEP) or store.pointer.index is not iv.phi:
            return False
        return fully_unroll_loop(loop, function, trip_count)


@register_pass
class IRCE(_LoopPassBase):
    """Inductive range check elimination: fold in-loop range checks implied by
    the loop bounds."""

    name = "irce"
    module_independent = True
    description = "Eliminate range checks implied by loop bounds"

    def run_on_loop(self, loop: Loop, function: Function, module: Module) -> bool:
        iv = find_induction_variable(loop)
        if iv is None:
            return False
        init = constant_value(iv.init)
        bound = constant_value(iv.bound)
        if init is None or bound is None or iv.step <= 0:
            return False
        if iv.compare.predicate not in ("slt", "ult"):
            return False
        changed = False
        for block in loop.blocks:
            for inst in list(block.instructions):
                if not isinstance(inst, ICmp) or inst is iv.compare:
                    continue
                if inst.lhs is not iv.phi:
                    continue
                limit = constant_value(inst.rhs)
                if limit is None:
                    continue
                # i in [init, bound) with positive step: i < limit is always true
                # when limit >= bound; i >= 0 style checks hold when init >= 0.
                always_true = None
                if inst.predicate in ("slt", "ult") and to_signed(limit) >= to_signed(bound):
                    always_true = True
                elif inst.predicate in ("sge", "uge") and to_signed(limit) <= to_signed(init):
                    always_true = True
                if always_true:
                    inst.replace_all_uses_with(Constant(1, I1))
                    inst.erase()
                    changed = True
        return changed
