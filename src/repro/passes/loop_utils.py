"""Shared loop utilities: loop-simplify canonicalization, LCSSA, and
induction-variable discovery.  Used by licm, the unrollers and the other
loop passes."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..ir import (
    BasicBlock, BinaryOp, Branch, CondBranch, Constant, Function, ICmp,
    Instruction, Loop, LoopInfo, Phi, Value, I32,
)
from ..ir.analysis_cache import cfg_cache_enabled
from .utils import constant_value, fold_icmp, to_signed


def ensure_preheader(loop: Loop, function: Function) -> Optional[BasicBlock]:
    """Return the loop preheader, creating one if necessary (loop-simplify)."""
    existing = loop.preheader()
    if existing is not None:
        return existing
    header = loop.header
    outside_preds = [p for p in header.predecessors if p not in loop.blocks]
    if not outside_preds:
        return None
    preheader = function.add_block(f"{header.name}.preheader")
    # Place it right before the header for readability.
    function.blocks.remove(preheader)
    function.blocks.insert(function.blocks.index(header), preheader)
    function.invalidate_cfg()  # analyses are sensitive to block order too
    preheader.append(Branch(header))

    for pred in outside_preds:
        pred.replace_successor(header, preheader)

    # Rewire header phis: entries from outside predecessors are merged into a
    # phi in the preheader (or moved directly when there is only one).
    for phi in header.phis():
        outside_entries = [(v, b) for v, b in phi.incoming if b in outside_preds]
        for _, block in outside_entries:
            phi.remove_incoming(block)
        if len(outside_entries) == 1:
            phi.add_incoming(outside_entries[0][0], preheader)
        elif outside_entries:
            merged = Phi(phi.type, f"{phi.name}.ph")
            preheader.insert(0, merged)
            for value, block in outside_entries:
                merged.add_incoming(value, block)
            phi.add_incoming(merged, preheader)
    return preheader


def form_lcssa(loop: Loop, function: Function) -> bool:
    """Insert LCSSA phis: values defined in the loop but used outside are
    routed through phi nodes in the exit blocks."""
    changed = False
    exits = loop.exit_blocks()
    for block in list(loop.blocks):
        for inst in list(block.instructions):
            if not inst.users or not inst.has_result:
                continue
            outside_users = [u for u in inst.users
                             if isinstance(u, Instruction) and u.parent is not None
                             and u.parent not in loop.blocks]
            if not outside_users:
                continue
            for exit_block in exits:
                # Only handle exits whose predecessors are all inside the loop
                # (dedicated exits); others are left alone.
                preds = exit_block.predecessors
                if not preds or any(p not in loop.blocks for p in preds):
                    continue
                users_below = [u for u in outside_users
                               if u.parent is exit_block or _reachable_from(exit_block, u.parent)]
                if not users_below:
                    continue
                lcssa_phi = Phi(I32, f"{inst.name}.lcssa")
                for pred in preds:
                    lcssa_phi.add_incoming(inst, pred)
                exit_block.insert(0, lcssa_phi)
                for user in users_below:
                    if isinstance(user, Phi):
                        continue
                    user.replace_operand(inst, lcssa_phi)
                changed = True
    return changed


def _reachable_from(start: BasicBlock, target: Optional[BasicBlock]) -> bool:
    if target is None:
        return False
    seen = set()
    worklist = [start]
    while worklist:
        block = worklist.pop()
        if block is target:
            return True
        if block in seen:
            continue
        seen.add(block)
        worklist.extend(block.successors)
    return False


@dataclass
class InductionVariable:
    """A canonical induction variable: ``phi`` starts at ``init`` and is
    updated by ``update = phi + step`` on the latch path; the loop exits when
    ``icmp predicate (phi|update), bound`` fails in the header."""

    phi: Phi
    init: Value
    step: int
    update: BinaryOp
    compare: ICmp
    bound: Value
    exit_block: BasicBlock
    body_successor: BasicBlock
    continue_on_true: bool

    def trip_count(self, max_iterations: int = 1 << 20) -> Optional[int]:
        """Simulate the IV to find the trip count, when init/bound are constants.

        The simulation is a pure function of the IV's constants and compare
        shape, so its result is memoized process-wide (disabled together with
        the analysis caches, since the seed re-simulated on every query).
        """
        init = constant_value(self.init)
        bound = constant_value(self.bound)
        if init is None or bound is None:
            return None
        compares_update = self.compare.lhs is self.update or self.compare.rhs is self.update
        iv_on_lhs = self.compare.lhs is self.phi or self.compare.lhs is self.update
        memoize = cfg_cache_enabled()
        key = (init, bound, self.step, self.compare.predicate, compares_update,
               iv_on_lhs, self.continue_on_true, max_iterations)
        if memoize and key in _TRIP_COUNT_MEMO:
            return _TRIP_COUNT_MEMO[key]
        result = None
        value = init
        count = 0
        while count <= max_iterations:
            probe = (value + self.step) & 0xFFFFFFFF if compares_update else value
            lhs, rhs = (probe, bound) if iv_on_lhs else (bound, probe)
            taken = bool(fold_icmp(self.compare.predicate, lhs, rhs))
            if taken != self.continue_on_true:
                result = count
                break
            value = (value + self.step) & 0xFFFFFFFF
            count += 1
        if memoize:
            _TRIP_COUNT_MEMO[key] = result
        return result


#: Memoized trip-count simulations, keyed by the IV constants/compare shape.
_TRIP_COUNT_MEMO: dict[tuple, Optional[int]] = {}


def find_induction_variable(loop: Loop) -> Optional[InductionVariable]:
    """Find the canonical IV of an SSA-form loop, if it has one."""
    header = loop.header
    term = header.terminator
    if not isinstance(term, CondBranch):
        return None
    in_loop = [s for s in term.successors if s in loop.blocks]
    out_loop = [s for s in term.successors if s not in loop.blocks]
    if len(in_loop) != 1 or len(out_loop) != 1:
        return None
    compare = term.condition
    if not isinstance(compare, ICmp) or compare.parent is not header:
        return None
    preheader = loop.preheader()
    if preheader is None:
        outside = [p for p in header.predecessors if p not in loop.blocks]
        if len(outside) != 1:
            return None
        preheader = outside[0]

    for phi in header.phis():
        init = phi.incoming_for_block(preheader)
        latch_values = [v for v, b in phi.incoming if b in loop.blocks]
        if init is None or len(latch_values) != 1:
            continue
        update = latch_values[0]
        if not isinstance(update, BinaryOp) or update.opcode != "add":
            continue
        if update.lhs is phi and constant_value(update.rhs) is not None:
            step = to_signed(constant_value(update.rhs))
        elif update.rhs is phi and constant_value(update.lhs) is not None:
            step = to_signed(constant_value(update.lhs))
        else:
            continue
        operands = (compare.lhs, compare.rhs)
        if phi not in operands and update not in operands:
            continue
        bound = compare.rhs if (compare.lhs is phi or compare.lhs is update) else compare.lhs
        return InductionVariable(phi=phi, init=init, step=step, update=update,
                                 compare=compare, bound=bound,
                                 exit_block=out_loop[0], body_successor=in_loop[0],
                                 continue_on_true=term.true_target in loop.blocks)
    return None


def loop_is_invariant(value: Value, loop: Loop) -> bool:
    """A value is loop-invariant if it is not defined inside the loop."""
    if isinstance(value, Instruction):
        return value.parent not in loop.blocks
    return True
