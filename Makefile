# CI-friendly entry points for the reproduction.
#
#   make test            tier-1 test suite (the driver's gate)
#   make test-engine     engine/cache/CLI tests only
#   make figures-smoke   regenerate a figure + table on a tiny slice via the CLI
#   make bench-engine    serial vs parallel vs warm-cache wall-time report
#   make bench-emulator  fast vs reference interpreter Minstr/s; writes
#                        BENCH_emulator.json (perf trajectory across PRs)
#   make bench-emulator-batched
#                        adds the batched lockstep emulator pass (256 lanes)
#                        and enforces its aggregate speedup bar (5x warm
#                        single-stream in CI; locally lands 20x+)
#   make bench-emulator-translated
#                        adds the superblock-translated pass and enforces its
#                        aggregate speedup bar (4x warm single-stream) at
#                        byte-for-byte TraceStats/memory parity
#   make coverage        tier-1 suite under pytest-cov with a line-rate floor
#                        (skips gracefully when pytest-cov is not installed)
#   make bench-passes    cached vs seed pass-pipeline compile time; writes
#                        BENCH_passes.json (1.5x bar enforced)
#   make bench-backend   optimizing vs seed backend RISC Zero cycles; writes
#                        BENCH_backend.json (10% geomean reduction enforced)
#   make bench-encoding  RV32/RVC binary encoding: byte-identical round-trips,
#                        semantic replay of the reassembled binaries, and the
#                        RVC code-size bar; writes BENCH_encoding.json (20%
#                        geomean size reduction enforced)
#   make fuzz-smoke      ~200-seed differential fuzzing campaign across all
#                        generator modes, journaled and restarted mid-way to
#                        exercise --resume (minutes; fails on any divergence)
#   make chaos           fault-injection suite: retries, timeouts, poison-job
#                        quarantine, cache damage, campaign resume
#   make docs-check      markdown link check + GUIDE.md quickstart smoke run
#   make bench           full pytest-benchmark harness (slow)

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test test-engine chaos figures-smoke bench-engine bench-emulator \
	bench-emulator-batched bench-emulator-translated bench-passes \
	bench-backend bench-encoding fuzz-smoke docs-check coverage bench \
	clean-cache

test:
	$(PYTHON) -m pytest -x -q

test-engine:
	$(PYTHON) -m pytest -x -q tests/test_engine.py

# The chaos suite: every fault the engine claims to survive, injected
# deterministically (FaultPlan) and checked end to end — including a real
# SIGINT of a running campaign followed by --resume.
chaos:
	$(PYTHON) -m pytest -x -q tests/test_faults.py

# Small slices so this finishes in seconds; the second run of each target is
# expected to report computed=0 (warm disk cache).
figures-smoke:
	$(PYTHON) -m repro figure 5 --benchmarks fibonacci loop-sum
	$(PYTHON) -m repro table 6 --benchmarks fibonacci loop-sum
	$(PYTHON) -m repro figure 14 --benchmarks fibonacci

bench-engine:
	$(PYTHON) benchmarks/bench_engine.py

# Fails if the pre-decoded fast path drops below 3x the seed interpreter.
bench-emulator:
	$(PYTHON) benchmarks/bench_emulator.py --json BENCH_emulator.json

# Adds the batched lockstep pass: every lane is differentially checked
# against the single-stream trace, and the batched aggregate must beat the
# warm single-stream aggregate (override: make bench-emulator-batched
# BENCH_BATCHED_BAR=3 BENCH_BATCHED_LANES=64).
BENCH_BATCHED_BAR ?= 5.0
BENCH_BATCHED_LANES ?= 256
bench-emulator-batched:
	$(PYTHON) benchmarks/bench_emulator.py --json BENCH_emulator.json \
		--batched --lanes $(BENCH_BATCHED_LANES) \
		--min-batched-speedup $(BENCH_BATCHED_BAR)

# Adds the superblock-translated pass: every benchmark must replay with
# byte-for-byte identical TraceStats, paging events and final memory, and the
# translated aggregate must beat the warm single-stream aggregate by the bar
# (override: make bench-emulator-translated BENCH_TRANSLATED_BAR=3).
BENCH_TRANSLATED_BAR ?= 4.0
bench-emulator-translated:
	$(PYTHON) benchmarks/bench_emulator.py --json BENCH_emulator.json \
		--translated --min-translated-speedup $(BENCH_TRANSLATED_BAR)

# Fails if the invalidation-aware pipeline drops below 1.5x the preserved
# seed pass manager (override: make bench-passes BENCH_PASSES_BAR=1.2).
BENCH_PASSES_BAR ?= 1.5
bench-passes:
	$(PYTHON) benchmarks/bench_passes.py --json BENCH_passes.json \
		--min-speedup $(BENCH_PASSES_BAR)

# Fails if the optimizing backend's geomean RISC Zero total-cycle reduction
# over the preserved seed backend drops below 10% at -O3 (override:
# make bench-backend BENCH_BACKEND_BAR=0.05).
BENCH_BACKEND_BAR ?= 0.10
bench-backend:
	$(PYTHON) benchmarks/bench_backend.py --json BENCH_backend.json \
		--min-reduction $(BENCH_BACKEND_BAR)

# Fails if any benchmark's encode->decode->re-encode round-trip is not
# byte-identical, if a reassembled binary diverges on the emulator, or if the
# geomean RVC code-size reduction drops below the bar (override:
# make bench-encoding BENCH_ENCODING_BAR=0.15).
BENCH_ENCODING_BAR ?= 0.20
bench-encoding:
	$(PYTHON) benchmarks/bench_encoding.py --json BENCH_encoding.json \
		--min-reduction $(BENCH_ENCODING_BAR)

# Differential fuzzing: generated MiniC programs replayed through every
# oracle (IR interpreter, both backends, both emulators, cached-vs-fresh
# pipeline) under both paper profiles.  Runs as a two-step resumable
# campaign: the first invocation journals a few shards and stops, the second
# resumes from the journal and must finish the remainder — exercising the
# checkpoint/restart path on every CI run.  Exits non-zero on any
# divergence; failures are delta-debugged to minimal reproducers (override
# the batch: make fuzz-smoke FUZZ_SEEDS=50 FUZZ_START_SEED=1000).
FUZZ_SEEDS ?= 200
FUZZ_START_SEED ?= 0
FUZZ_JOURNAL ?= .fuzz-smoke-journal.jsonl
fuzz-smoke:
	rm -f $(FUZZ_JOURNAL)
	$(PYTHON) -m repro --no-disk-cache fuzz --seeds $(FUZZ_SEEDS) \
		--start-seed $(FUZZ_START_SEED) --journal $(FUZZ_JOURNAL) \
		--stop-after-shards 4 --json
	$(PYTHON) -m repro --no-disk-cache fuzz --seeds $(FUZZ_SEEDS) \
		--start-seed $(FUZZ_START_SEED) --journal $(FUZZ_JOURNAL) \
		--resume --minimize --json
	rm -f $(FUZZ_JOURNAL)

# Link-checks README.md/docs/*.md and smoke-runs the GUIDE.md quickstart.
docs-check:
	$(PYTHON) -m pytest -q tests/test_docs.py
	$(PYTHON) -m repro --no-disk-cache run fibonacci --profile=-O2
	$(PYTHON) -m repro --no-disk-cache measure loop-sum --profile=-O3
	$(PYTHON) -m repro --no-disk-cache lower fibonacci --stats
	$(PYTHON) -m repro passes
	$(PYTHON) -m repro list benchmarks

# Tier-1 suite under pytest-cov with a line-rate floor over src/repro.  The
# floor is a conservative lower bound on the measured rate (CI enforces it;
# override: make coverage COV_FLOOR=70).  Skips gracefully where pytest-cov
# is not installed so the target never blocks a toolchain without it.
COV_FLOOR ?= 75
coverage:
	@if $(PYTHON) -c "import pytest_cov" 2>/dev/null; then \
		$(PYTHON) -m pytest -q --cov=repro \
			--cov-report=term --cov-fail-under=$(COV_FLOOR); \
	else \
		echo "pytest-cov is not installed; skipping coverage" \
			"(pip install pytest-cov to enable)"; \
	fi

bench:
	$(PYTHON) -m pytest benchmarks -q

clean-cache:
	$(PYTHON) -c "from repro.experiments.cache import MeasurementCache; print(MeasurementCache().clear(), 'entries removed')"
