#!/usr/bin/env python3
"""Reproduce Figure 14: compare vanilla -O3 against the zkVM-aware -O3
(Change Sets 1-3) across a set of benchmarks.

Run with:  python examples/zkvm_aware_compiler.py [benchmark ...]
"""
import sys

from repro.analysis import format_table
from repro.experiments import BenchmarkRunner, figures

DEFAULT = ["fibonacci", "loop-sum", "polybench-floyd-warshall", "polybench-covariance",
           "npb-ft", "regex-match", "sha256", "tailcall"]


def main():
    benchmarks = sys.argv[1:] or DEFAULT
    runner = BenchmarkRunner()
    result = figures.figure14_zkvm_aware(runner, benchmarks)
    rows = []
    for bench, row in result.items():
        rows.append([bench,
                     row[("risc0", "execution_time")], row[("sp1", "execution_time")],
                     row[("risc0", "proving_time")], row[("sp1", "proving_time")],
                     row["instruction_reduction"]])
    print(format_table(
        ["benchmark", "r0 exec %", "sp1 exec %", "r0 prove %", "sp1 prove %", "instr %"],
        rows, title="zkVM-aware -O3 vs vanilla -O3 (positive = modified compiler is faster)"))


if __name__ == "__main__":
    main()
