#!/usr/bin/env python3
"""Run the full study matrix (all 58 benchmarks x all profiles) and print every
table/figure.  This is the long-running counterpart of the pytest-benchmark
targets; expect it to take a while in pure Python.

Run with:  python examples/full_study.py [--quick]
"""
import sys

from repro.benchmarks import all_benchmark_names
from repro.experiments import BenchmarkRunner, figures, tables
from repro.passes import available_passes


def main():
    quick = "--quick" in sys.argv
    benchmarks = all_benchmark_names()
    passes = available_passes()
    if quick:
        benchmarks = benchmarks[::6]
        passes = passes[::4]
    runner = BenchmarkRunner()

    print("== Table 1 =="); print(tables.table1_gain_loss_counts(runner, benchmarks, passes))
    print("== Table 2 =="); print(tables.table2_correlations(runner, benchmarks[:10], passes[:10]))
    print("== Table 3 =="); print(tables.table3_manual_unrolling())
    print("== Table 6 =="); print(tables.table6_baseline_statistics(runner, benchmarks))
    print("== Figure 3 =="); print(figures.figure3_pass_impact(runner, benchmarks, passes)["top_passes"])
    print("== Figure 5 =="); print(figures.figure5_optimization_levels(runner, benchmarks))
    print("== Figure 7 =="); print(figures.figure7_zkvm_vs_x86(runner, benchmarks[:12], passes[:12]))
    print("== Figure 14 =="); print(figures.figure14_zkvm_aware(runner, benchmarks))
    print("== Figure 15 =="); print(figures.figure15_native_vs_zkvm(runner))


if __name__ == "__main__":
    main()
