#!/usr/bin/env python3
"""Reproduce a small slice of RQ1/RQ3: the impact of individual passes on the
two zkVMs and on the x86 model, relative to the unoptimized baseline.

Run with:  python examples/pass_impact_study.py [benchmark ...]
"""
import sys

from repro.analysis import format_table
from repro.experiments import BenchmarkRunner, individual_pass_profiles

DEFAULT = ["fibonacci", "tailcall", "polybench-gemm", "npb-lu", "sha256"]
PASSES = ["inline", "always-inline", "mem2reg", "sroa", "instcombine", "gvn",
          "simplifycfg", "jump-threading", "licm", "loop-extract", "loop-rotate",
          "reg2mem", "tailcall"]


def main():
    benchmarks = sys.argv[1:] or DEFAULT
    runner = BenchmarkRunner()
    profiles = [p for p in individual_pass_profiles() if p.name in PASSES]
    rows = []
    for profile in profiles:
        risc0 = sum(runner.gain(b, profile, "risc0", "execution_time")
                    for b in benchmarks) / len(benchmarks)
        sp1 = sum(runner.gain(b, profile, "sp1", "execution_time")
                  for b in benchmarks) / len(benchmarks)
        prove = sum(runner.gain(b, profile, "risc0", "proving_time")
                    for b in benchmarks) / len(benchmarks)
        x86 = sum(runner.cpu_gain(b, profile) for b in benchmarks) / len(benchmarks)
        rows.append([profile.name, risc0, sp1, prove, x86])
    rows.sort(key=lambda r: -r[1])
    print(format_table(
        ["pass", "risc0 exec %", "sp1 exec %", "risc0 prove %", "x86 exec %"],
        rows, title=f"Average gain over baseline across {benchmarks}"))


if __name__ == "__main__":
    main()
