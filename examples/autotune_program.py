#!/usr/bin/env python3
"""Reproduce the RQ2 autotuning experiment on one benchmark: search for a pass
sequence that beats -O3 using cycle count as the fitness function.

Run with:  python examples/autotune_program.py [benchmark] [iterations]
"""
import sys

from repro.autotuner import GeneticAutotuner
from repro.experiments import BenchmarkRunner


def main():
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "npb-is"
    iterations = int(sys.argv[2]) if len(sys.argv) > 2 else 25
    runner = BenchmarkRunner()
    tuner = GeneticAutotuner(runner=runner, seed=42, zkvm="risc0")
    print(f"Autotuning {benchmark} for {iterations} evaluations (fitness: RISC Zero cycles)")
    result = tuner.tune(benchmark, iterations=iterations)
    print(f"  baseline cycles : {result.baseline_cycles}")
    print(f"  -O3 cycles      : {result.o3_cycles}")
    print(f"  tuned cycles    : {result.best_cycles}")
    print(f"  gain over -O3   : {result.gain_over_o3_percent:+.1f}% "
          f"({result.speedup_over_o3:.2f}x)")
    print(f"  best sequence   : {result.best.passes}")
    print(f"  inline-threshold={result.best.inline_threshold} "
          f"unroll-threshold={result.best.unroll_threshold}")


if __name__ == "__main__":
    main()
