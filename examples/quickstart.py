#!/usr/bin/env python3
"""Quickstart: compile a guest program, optimize it, and compare zkVM metrics.

Run with:  python examples/quickstart.py
"""
from repro.backend import compile_module
from repro.cpu import CpuTimingModel
from repro.emulator import Machine
from repro.frontend import compile_source
from repro.passes import pipeline_for_level
from repro.zkvm import ZKVMS

SOURCE = """
const N = 500;
global table[64];

fn mix(x) -> int { return (x * 31 + 7) % 1024; }

fn main() -> int {
  var acc = 0;
  var i;
  for (i = 0; i < N; i = i + 1) {
    table[i % 64] = mix(i);
    acc = acc + table[i % 64] / 4;
  }
  print(acc);
  return acc;
}
"""


def measure(module, label):
    program = compile_module(module)
    cpu = CpuTimingModel()
    machine = Machine(program, observers=[cpu])
    trace = machine.run()
    print(f"--- {label} ---")
    print(f"  guest output        : {trace.output}")
    print(f"  dynamic instructions: {trace.instructions}")
    for name, model in ZKVMS.items():
        metrics = model.evaluate(trace, machine.page_in_events, machine.page_out_events)
        print(f"  {name:6s} cycles={metrics.total_cycles:>9d} "
              f"exec={metrics.execution_time * 1000:.3f} ms "
              f"prove={metrics.proving_time:.2f} s")
    print(f"  x86 model           : {cpu.finalize().execution_time * 1e6:.1f} us")
    return trace


def main():
    module = compile_source(SOURCE, "quickstart")
    baseline = measure(module.clone(), "unoptimized baseline")

    optimized = module.clone()
    pipeline_for_level("-O3").run(optimized)
    o3 = measure(optimized, "-O3")

    zkvm_aware = module.clone()
    pipeline_for_level("-O3", zkvm_aware=True).run(zkvm_aware)
    aware = measure(zkvm_aware, "zkVM-aware -O3 (Change Sets 1-3)")

    assert baseline.output == o3.output == aware.output
    print()
    print(f"-O3 removes {100 * (1 - o3.instructions / baseline.instructions):.1f}% "
          f"of executed instructions; the zkVM-aware build removes "
          f"{100 * (1 - aware.instructions / baseline.instructions):.1f}%.")


if __name__ == "__main__":
    main()
