"""Package metadata for the zkVM compiler-optimization reproduction.

The package lives under ``src/`` (``pip install -e .`` picks it up from
there) and installs a ``repro`` console script equivalent to
``python -m repro``.
"""

import re
from pathlib import Path

from setuptools import find_packages, setup

ROOT = Path(__file__).resolve().parent

VERSION = re.search(r'__version__ = "([^"]+)"',
                    (ROOT / "src" / "repro" / "__init__.py").read_text()).group(1)

README = ROOT / "README.md"
LONG_DESCRIPTION = README.read_text() if README.is_file() else ""

setup(
    name="repro-zkvm-opt",
    version=VERSION,
    description=("Reproduction of 'Evaluating Compiler Optimization Impacts on "
                 "zkVM Performance' (ASPLOS 2026): MiniC-to-RV32IM compiler, "
                 "emulator, zkVM cost models, benchmark suite, experiment "
                 "engine and autotuner"),
    long_description=LONG_DESCRIPTION,
    long_description_content_type="text/markdown",
    author="paper-repo-growth",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    entry_points={"console_scripts": ["repro=repro.cli:main"]},
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "Programming Language :: Python :: 3",
        "Topic :: Software Development :: Compilers",
    ],
)
